"""The bloomRF point-range filter (the paper's primary contribution).

Layout
------
All PMHF segments live in one :class:`~repro.bitarray.BitArray`, each segment
64-bit aligned; the optional exact-level bitmap is a second bit array.  Layer
``i`` owns a window of ``W_i = segment_bits / word_bits_i`` words inside its
segment; its piecewise-monotone hash function maps a key ``x`` to the global
bit position::

    MH_i(x) = seg_base_i
              + (h_i(x >> (l_i + delta_i - 1)) mod W_i) * word_bits_i
              + ((x >> l_i) & (word_bits_i - 1))

i.e. the hash sees only the part of the prefix *above* the word, so the low
``delta_i - 1`` prefix bits select the bit inside the word and local order is
preserved (Sect. 3.2; verified bit-for-bit against the paper's Fig. 4
example in the tests).  Replicated hash functions (Sect. 7) repeat the word
placement with independent seeds; the in-word offset is shared, so replicas
preserve the same local order.

Operations
----------
* ``insert`` / ``contains_point`` behave like a Bloom filter over the key's
  prefix code (Sect. 4), plus the exact bitmap when configured.
* ``contains_range`` runs the two-path Algorithm 1 via
  :func:`repro.dyadic.two_path_range_lookup`; covering probes test one bit
  per replica and decomposition probes read at most two aligned words per
  path per layer.
* ``insert_many`` / ``contains_point_many`` / ``contains_range_many`` are
  NumPy-vectorized bulk paths computing bit-identical answers to the scalar
  ones (asserted by the tests), including the same domain validation.

Batched range-query engine
--------------------------
Bulk range lookups separate *plan compilation* from *probe execution*:

1. :func:`repro.dyadic.compile_range_plan` runs Algorithm 1's two-path walk
   once per query — pure integer arithmetic, no hashing — and emits a flat
   :class:`~repro.dyadic.RangePlan`: covering ``(layer, prefix)`` bit probes
   (phase-1 guards plus the left/right gate chains) and decomposition
   ``(layer, p_lo, p_hi)`` mask probes with the walk's early-exit/decision
   structure encoded as guard/gate dependencies.  This is the reference
   form of the probe program (tested against the callback walk).
2. ``contains_range_many`` emits that same probe program batch-wide —
   probe emission is a pure function of ``(lo, hi, levels)``, so one
   top-down sweep computes each layer's probes for every live query as
   stacked arrays — and resolves it with vectorized NumPy: one
   :func:`splitmix64_array` hash + :meth:`BitArray.test_bits` /
   :meth:`BitArray.read_fields` call per (layer, replica) serves every
   query probing that layer, guard-flip handling included; the exact-level
   pseudo-layer resolves through :meth:`BitArray.any_in_ranges`.  Live-set
   pruning applies the walk's early exits batch-wide, so no per-probe
   Python callback runs.

``two_path_range_lookup`` remains the scalar reference oracle.  The walk
therefore exists in three forms (callback, compiled plan, batched sweep);
the cross-property tests pin them together: plan-vs-callback equivalence
on randomized oracles and batch-vs-scalar bit-identity across configs.
Run ``PYTHONPATH=src python benchmarks/bench_ops_rangebatch.py`` for the
batch-vs-scalar throughput benchmark (``--quick`` for the CI smoke mode).

Thread-safety: mutation happens through single NumPy word-level OR
operations, which CPython executes atomically under the GIL, so concurrent
inserts and probes never observe torn words (they may race benignly, exactly
like the paper's parallel filter).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util import check_key, domain_max
from repro.bitarray import BitArray
from repro.core.config import BloomRFConfig
from repro.dyadic import two_path_range_lookup
from repro.hashing import splitmix64, splitmix64_array

__all__ = ["BloomRF"]

# Probing an enormous prefix range word-by-word (possible only for queries
# far beyond the configured range budget) is cut off conservatively: the
# filter answers "maybe" — sound, never a false negative.
_MAX_MASK_GROUPS = 1 << 16

# Scalar mask probes spanning more groups than this resolve through the
# vectorized field reader instead of the per-group Python loop.
_SCALAR_MASK_GROUPS = 4

_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _concat(a: np.ndarray | None, b: np.ndarray) -> np.ndarray:
    """Concatenate two optional probe-accumulator arrays."""
    if a is None or a.size == 0:
        return b
    return np.concatenate((a, b))


class _Layer:
    """Precomputed per-layer probe geometry (internal)."""

    __slots__ = (
        "index",
        "level",
        "delta",
        "word_bits",
        "offset_bits",
        "offset_mask",
        "seg_base",
        "num_words",
        "seeds",
        "guard_seed",
        "u_level",
        "u_offset_bits",
        "u_offset_mask",
        "u_word_bits",
        "u_num_words",
        "u_seg_base",
    )

    def __init__(
        self,
        index: int,
        level: int,
        delta: int,
        seg_base: int,
        seg_bits: int,
        seeds: Sequence[int],
    ) -> None:
        self.index = index
        self.level = level
        self.delta = delta
        self.word_bits = 1 << (delta - 1)
        self.offset_bits = delta - 1
        self.offset_mask = self.word_bits - 1
        self.seg_base = seg_base
        self.num_words = seg_bits // self.word_bits
        self.seeds = list(seeds)
        # Guard hash seed is per layer, not per replica.
        self.guard_seed = self.seeds[0] ^ 0xA5A5
        # np.uint64 constants hoisted out of the vectorized inner loops.
        self.u_level = np.uint64(level)
        self.u_offset_bits = np.uint64(self.offset_bits)
        self.u_offset_mask = np.uint64(self.offset_mask)
        self.u_word_bits = np.uint64(self.word_bits)
        self.u_num_words = np.uint64(self.num_words)
        self.u_seg_base = np.uint64(self.seg_base)


class BloomRF:
    """Unified point-range filter with prefix hashing and PMHF."""

    def __init__(self, config: BloomRFConfig) -> None:
        self.config = config
        self._d = config.domain_bits
        # Segments are packed into one bit array with 64-bit-aligned bases,
        # so every power-of-two word read stays within one storage word.
        seg_bases: list[int] = []
        base = 0
        for seg in config.segment_bits:
            seg_bases.append(base)
            base += (seg + 63) & ~63
        self._bits = BitArray(max(base, 64))

        self._layers: list[_Layer] = []
        seed_cursor = 0
        for i in range(config.num_layers):
            replica_seeds = [
                splitmix64(seed_cursor + r, seed=config.seed)
                for r in range(config.replicas[i])
            ]
            seed_cursor += config.replicas[i]
            seg = config.segment_of[i]
            self._layers.append(
                _Layer(
                    index=i,
                    level=config.levels[i],
                    delta=config.deltas[i],
                    seg_base=seg_bases[seg],
                    seg_bits=config.segment_bits[seg],
                    seeds=replica_seeds,
                )
            )

        self._exact: BitArray | None = None
        if config.exact_level is not None:
            self._exact = BitArray(config.exact_bitmap_bits)

        # Flattened per-layer geometry so the scalar insert runs one tight
        # loop without attribute lookups; replica seeds stay nested so the
        # guard hash is computed once per layer, not once per replica.
        self._flat_geometry: list[tuple] = [
            (
                layer.level,
                layer.offset_bits,
                layer.offset_mask,
                layer.word_bits,
                layer.num_words,
                layer.seg_base,
                tuple(layer.seeds),
                layer.guard_seed,
            )
            for layer in self._layers
        ]

        # Planner layer list: PMHF layers bottom-up, exact bitmap as the
        # pseudo top layer when configured.
        self._planner_levels: list[int] = [layer.level for layer in self._layers]
        self._exact_layer_index: int | None = None
        if self._exact is not None:
            self._exact_layer_index = len(self._planner_levels)
            self._planner_levels.append(config.exact_level)

        self._num_keys = 0
        self._guard = config.degenerate_guard

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def num_keys(self) -> int:
        """Number of insert operations performed (duplicates included)."""
        return self._num_keys

    @property
    def size_bits(self) -> int:
        """Total occupied filter size in bits."""
        return self.config.total_bits

    @property
    def bits_per_key(self) -> float:
        """Space per inserted key; ``inf`` for an empty filter."""
        if self._num_keys == 0:
            return float("inf")
        return self.size_bits / self._num_keys

    @property
    def domain_bits(self) -> int:
        return self._d

    def fill_ratio(self) -> float:
        """Fraction of PMHF bits set (diagnostic; Fig. 5 uses this)."""
        return self._bits.fill_ratio()

    @property
    def pmhf_bits(self) -> BitArray:
        """The raw PMHF bit array (read-only use: scatter diagnostics)."""
        return self._bits

    # ------------------------------------------------------------------
    # position computation (scalar)
    # ------------------------------------------------------------------
    def _offset(self, layer: _Layer, prefix: int) -> int:
        """In-word offset of a level-``l_i`` prefix, honoring the guard."""
        off = prefix & layer.offset_mask
        if self._guard and layer.offset_bits:
            group = prefix >> layer.offset_bits
            if splitmix64(group, seed=layer.guard_seed) & 1:
                off = layer.offset_mask - off
        return off

    def _word_base(self, layer: _Layer, group: int, seed: int) -> int:
        """Global bit position of the layer word for prefix-group ``group``."""
        word_index = splitmix64(group, seed=seed) % layer.num_words
        return layer.seg_base + word_index * layer.word_bits

    def _iter_positions(self, key: int):
        """Yield every PMHF bit position of ``key`` (all layers, replicas)."""
        for layer in self._layers:
            prefix = key >> layer.level
            group = prefix >> layer.offset_bits
            offset = self._offset(layer, prefix)
            for seed in layer.seeds:
                yield self._word_base(layer, group, seed) + offset

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        """Insert one key (sets ``r_i`` bits per layer plus the exact bit).

        Runs one tight loop over the flattened (layer, replica) geometry —
        bit-identical to the per-layer arithmetic (asserted by the tests).
        """
        check_key(key, self._d)
        words = self._bits.words
        guard = self._guard
        for level, offbits, offmask, wordbits, numwords, segbase, seeds, gseed in (
            self._flat_geometry
        ):
            prefix = key >> level
            group = prefix >> offbits
            offset = prefix & offmask
            if guard and offbits and splitmix64(group, seed=gseed) & 1:
                offset = offmask - offset
            base = segbase + offset
            for seed in seeds:
                pos = base + splitmix64(group, seed=seed) % numwords * wordbits
                words[pos >> 6] |= np.uint64(1 << (pos & 63))
        if self._exact is not None:
            self._exact.set_bit(key >> self.config.exact_level)
        self._num_keys += 1

    def insert_many(self, keys: np.ndarray) -> None:
        """Vectorized bulk insert; enforces the same domain check as insert."""
        keys = self._validated_keys(keys)
        if keys.size == 0:
            return
        for layer in self._layers:
            prefix = keys >> layer.u_level
            group = prefix >> layer.u_offset_bits
            offset = self._offsets_array(layer, prefix, group)
            base = layer.u_seg_base + offset
            for seed in layer.seeds:
                word_index = splitmix64_array(group, seed=seed) % layer.u_num_words
                self._bits.set_bits(base + word_index * layer.u_word_bits)
        if self._exact is not None:
            self._exact.set_bits(keys >> np.uint64(self.config.exact_level))
        self._num_keys += int(keys.size)

    def _validated_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :func:`check_key`: uint64 view of in-domain keys."""
        arr = np.asarray(keys)  # repro-lint: ignore[dtype-discipline] -- validation must see the caller's dtype to reject floats/negatives before astype(uint64)
        if arr.size == 0:
            return arr.astype(np.uint64)
        if arr.dtype == object:
            for key in arr.ravel():
                check_key(int(key), self._d)
            return arr.astype(np.uint64)
        if arr.dtype.kind not in "iub":
            raise TypeError(f"keys must be integers, got dtype {arr.dtype}")
        if arr.dtype.kind == "i" and arr.size and int(arr.min()) < 0:
            raise ValueError(
                f"key {int(arr.min())} outside the {self._d}-bit unsigned domain"
            )
        arr = arr.astype(np.uint64, copy=False)
        if self._d < 64 and arr.size:
            top = int(arr.max())
            if top > domain_max(self._d):
                raise ValueError(
                    f"key {top} outside the {self._d}-bit unsigned domain"
                )
        return arr

    def _validated_bounds(self, bounds: np.ndarray) -> np.ndarray:
        """Validate an ``(n, 2)`` inclusive-bounds array (vectorized)."""
        arr = np.asarray(bounds)  # repro-lint: ignore[dtype-discipline] -- validation must see the caller's dtype to reject floats/negatives before astype(uint64)
        if arr.size == 0:
            return np.zeros((0, 2), dtype=np.uint64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError(f"bounds must have shape (n, 2), got {arr.shape}")
        arr = self._validated_keys(arr)
        inverted = arr[:, 0] > arr[:, 1]
        if np.any(inverted):
            i = int(np.argmax(inverted))
            raise ValueError(
                f"empty query range [{int(arr[i, 0])}, {int(arr[i, 1])}]"
            )
        return arr

    def _offsets_array(
        self, layer: _Layer, prefix: np.ndarray, group: np.ndarray
    ) -> np.ndarray:
        offset = prefix & layer.u_offset_mask
        if self._guard and layer.offset_bits:
            flip = (
                splitmix64_array(group, seed=layer.guard_seed) & np.uint64(1)
            ).astype(bool)
            offset = np.where(flip, layer.u_offset_mask - offset, offset)
        return offset

    # ------------------------------------------------------------------
    # point lookup
    # ------------------------------------------------------------------
    def contains_point(self, key: int) -> bool:
        """Approximate membership test; may return a false positive only."""
        check_key(key, self._d)
        if self._exact is not None and not self._exact.test_bit(
            key >> self.config.exact_level
        ):
            return False
        for pos in self._iter_positions(key):
            if not self._bits.test_bit(pos):
                return False
        return True

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized point lookup: boolean array per key."""
        keys = self._validated_keys(keys)
        result = np.ones(keys.size, dtype=bool)
        if self._exact is not None:
            result &= self._exact.test_bits(
                keys >> np.uint64(self.config.exact_level)
            )
        for layer in self._layers:
            if not result.any():
                break
            prefix = keys >> layer.u_level
            group = prefix >> layer.u_offset_bits
            offset = self._offsets_array(layer, prefix, group)
            base = layer.u_seg_base + offset
            for seed in layer.seeds:
                word_index = splitmix64_array(group, seed=seed) % layer.u_num_words
                result &= self._bits.test_bits(base + word_index * layer.u_word_bits)
        return result

    __contains__ = contains_point

    # ------------------------------------------------------------------
    # range lookup (Algorithm 1)
    # ------------------------------------------------------------------
    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Approximate emptiness test of ``[l_key, r_key]`` (inclusive).

        Returns False only when the filter *proves* no inserted key lies in
        the interval; True means "possibly non-empty".  Constant O(k) word
        accesses regardless of the interval length (Sect. 5).
        """
        check_key(l_key, self._d)
        check_key(r_key, self._d)
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        return two_path_range_lookup(
            l_key, r_key, self._planner_levels, self._probe_bit, self._probe_mask
        )

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Batched range lookup over an ``(n, 2)`` array of inclusive bounds.

        Emits the same probe program :func:`~repro.dyadic.compile_range_plan`
        reifies per query, but batch-wide: one top-down sweep over the layers
        where each step computes the layer's covering/decomposition probes
        for every live query as stacked arrays and resolves them with the
        vectorized executors.  Bit-identical to calling
        :meth:`contains_range` per row (asserted by the tests) but without
        per-probe Python callbacks or scalar hashing, and with the walk's
        early exits applied batch-wide (dead or decided queries leave the
        live sets).
        """
        bounds = self._validated_bounds(bounds)
        n = bounds.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)

        levels = self._planner_levels
        top = len(levels) - 1
        lo_arr = bounds[:, 0]
        hi_arr = bounds[:, 1]
        u0 = np.uint64(0)
        u1 = np.uint64(1)

        # The walk's per-query state, batched.  Probe *emission* is a pure
        # function of (lo, hi, levels), so every query advances through the
        # same top-down layer sweep; pruning the live sets reproduces the
        # scalar walk's early exits batch-wide (dead queries stop probing,
        # resolved queries stop descending).
        result = np.zeros(n, dtype=bool)
        open_q = np.ones(n, dtype=bool)  # phase 1: one DI covers the query
        lactive = np.zeros(n, dtype=bool)  # left path open, chain intact
        ractive = np.zeros(n, dtype=bool)  # right path open, chain intact

        for li in range(top, -1, -1):
            level = levels[li]
            shift = np.uint64(min(level, 63))
            low_mask = np.uint64(((1 << level) - 1) & ((1 << 64) - 1))
            # Per-layer probe accumulators: (query index, prefix) for
            # covering bits, (query index, p_lo, p_hi) for mask probes.
            guard_idx = chain_l_idx = chain_r_idx = None
            guard_pref = chain_l_pref = chain_r_pref = None
            mask_parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []

            # ---- phase-2 descent (queries that split on a layer above) ----
            if li < top and lactive.any():
                idx = np.nonzero(lactive)[0]
                lo = lo_arr[idx]
                parent_mask = np.uint64(
                    ((1 << levels[li + 1]) - 1) & ((1 << 64) - 1)
                )
                p_lo = lo >> shift
                p_j = (lo | parent_mask) >> shift  # end of covering J
                aligned = (lo & low_mask) == u0
                if aligned.any():
                    # [l_key, j_hi] lies fully inside the query.
                    mask_parts.append(
                        (idx[aligned], p_lo[aligned], p_j[aligned])
                    )
                    lactive[idx[aligned]] = False
                walk = ~aligned
                masked = walk & (p_lo < p_j)
                if masked.any():
                    mask_parts.append(
                        (idx[masked], p_lo[masked] + u1, p_j[masked])
                    )
                chain_l_idx = idx[walk]
                chain_l_pref = p_lo[walk]
            if li < top and ractive.any():
                idx = np.nonzero(ractive)[0]
                hi = hi_arr[idx]
                parent_mask = np.uint64(
                    ((1 << levels[li + 1]) - 1) & ((1 << 64) - 1)
                )
                p_hi = hi >> shift
                p_j = (hi & ~parent_mask) >> shift  # start of covering J
                aligned = (hi & low_mask) == low_mask
                if aligned.any():
                    mask_parts.append(
                        (idx[aligned], p_j[aligned], p_hi[aligned])
                    )
                    ractive[idx[aligned]] = False
                walk = ~aligned
                masked = walk & (p_j < p_hi)
                if masked.any():
                    mask_parts.append(
                        (idx[masked], p_j[masked], p_hi[masked] - u1)
                    )
                chain_r_idx = idx[walk]
                chain_r_pref = p_hi[walk]

            # ---- phase 1: covering descent / split ------------------------
            if open_q.any():
                idx = np.nonzero(open_q)[0]
                lo = lo_arr[idx]
                hi = hi_arr[idx]
                if level >= 64:
                    p_lo = np.zeros(idx.size, dtype=np.uint64)
                    p_hi = p_lo
                    eq = np.ones(idx.size, dtype=bool)
                    di = (lo == u0) & (hi == _U64_ONES)
                else:
                    p_lo = lo >> shift
                    p_hi = hi >> shift
                    eq = p_lo == p_hi
                    di = (
                        eq
                        & ((lo & low_mask) == u0)
                        & ((hi & low_mask) == low_mask)
                    )
                if di.any():
                    # The query *is* this DI: one decomposition probe decides.
                    mask_parts.append((idx[di], p_lo[di], p_lo[di]))
                    open_q[idx[di]] = False
                guard = eq & ~di
                if guard.any():
                    guard_idx = idx[guard]
                    guard_pref = p_lo[guard]
                split = ~eq
                if split.any():
                    # Phase 2 starts: the covering path splits (Fig. 7).
                    s_idx = idx[split]
                    s_lo = lo[split]
                    s_hi = hi[split]
                    sp_lo = p_lo[split]
                    sp_hi = p_hi[split]
                    lalign = (s_lo & low_mask) == u0
                    ralign = (s_hi & low_mask) == low_mask
                    m_lo = np.where(lalign, sp_lo, sp_lo + u1)
                    m_hi = np.where(ralign, sp_hi, sp_hi - u1)
                    emit = m_lo <= m_hi
                    if emit.any():
                        mask_parts.append((s_idx[emit], m_lo[emit], m_hi[emit]))
                    unl = ~lalign
                    if unl.any():
                        chain_l_idx = _concat(chain_l_idx, s_idx[unl])
                        chain_l_pref = _concat(chain_l_pref, sp_lo[unl])
                        lactive[s_idx[unl]] = True
                    unr = ~ralign
                    if unr.any():
                        chain_r_idx = _concat(chain_r_idx, s_idx[unr])
                        chain_r_pref = _concat(chain_r_pref, sp_hi[unr])
                        ractive[s_idx[unr]] = True
                    open_q[s_idx] = False

            # ---- resolve this layer's probes in two vector rounds ---------
            n_guard = 0 if guard_idx is None else guard_idx.size
            n_chain_l = 0 if chain_l_idx is None else chain_l_idx.size
            bit_idx = [
                part
                for part in (guard_idx, chain_l_idx, chain_r_idx)
                if part is not None and part.size
            ]
            if bit_idx:
                prefs = np.concatenate(
                    [
                        part
                        for part in (guard_pref, chain_l_pref, chain_r_pref)
                        if part is not None and part.size
                    ]
                )
                ans = self._resolve_bits_layer(li, prefs)
                g_ans = ans[:n_guard]
                l_ans = ans[n_guard : n_guard + n_chain_l]
                r_ans = ans[n_guard + n_chain_l :]
                if n_guard:
                    open_q[guard_idx[~g_ans]] = False  # covering empty
                if l_ans.size:
                    lactive[chain_l_idx[~l_ans]] = False
                if r_ans.size:
                    ractive[chain_r_idx[~r_ans]] = False
            if mask_parts:
                m_idx = np.concatenate([part[0] for part in mask_parts])
                m_lo = np.concatenate([part[1] for part in mask_parts])
                m_hi = np.concatenate([part[2] for part in mask_parts])
                hit_q = m_idx[self._resolve_masks_layer(li, m_lo, m_hi)]
                if hit_q.size:
                    # Filter says "may contain a key": the query is decided.
                    result[hit_q] = True
                    lactive[hit_q] = False
                    ractive[hit_q] = False

            if not (open_q.any() or lactive.any() or ractive.any()):
                break

        return result

    # -- vectorized probe executors (shared by the batch engine) -------
    def _resolve_bits_layer(self, li: int, prefixes: np.ndarray) -> np.ndarray:
        """Resolve one layer's covering probes: AND over replicas.

        One ``splitmix64_array`` + ``test_bits`` round per replica serves
        every probe of the layer across the whole query batch.
        """
        if li == self._exact_layer_index:
            return self._exact.test_bits(prefixes)
        layer = self._layers[li]
        group = prefixes >> layer.u_offset_bits
        base = layer.u_seg_base + self._offsets_array(layer, prefixes, group)
        hit = np.ones(prefixes.size, dtype=bool)
        for seed in layer.seeds:
            word_index = splitmix64_array(group, seed=seed) % layer.u_num_words
            hit &= self._bits.test_bits(base + word_index * layer.u_word_bits)
        return hit

    def _resolve_masks_layer(
        self, li: int, p_lo: np.ndarray, p_hi: np.ndarray
    ) -> np.ndarray:
        """Resolve one layer's decomposition probes (word-mask reads).

        Each probe expands into its covered prefix groups; one
        ``splitmix64_array`` + ``read_fields`` round per replica resolves
        every group of every probe, and per-probe answers are the OR over
        their groups (AND over replicas within a group).
        """
        ans = np.zeros(p_lo.size, dtype=bool)
        if p_lo.size == 0:
            return ans
        if li == self._exact_layer_index:
            return self._exact.any_in_ranges(p_lo, p_hi)
        layer = self._layers[li]
        idx = np.arange(p_lo.size)
        lo = p_lo
        hi = p_hi
        g_lo = lo >> layer.u_offset_bits
        g_hi = hi >> layer.u_offset_bits
        wide = (g_hi - g_lo) >= np.uint64(_MAX_MASK_GROUPS)
        if wide.any():
            # Beyond the rated range budget: sound "maybe".
            ans[idx[wide]] = True
            narrow = ~wide
            idx, lo, hi = idx[narrow], lo[narrow], hi[narrow]
            g_lo, g_hi = g_lo[narrow], g_hi[narrow]
            if idx.size == 0:
                return ans
        counts = (g_hi - g_lo).astype(np.int64) + 1
        total = int(counts.sum())
        probe_of_group = np.repeat(np.arange(idx.size), counts)
        starts = np.cumsum(counts) - counts
        intra = (np.arange(total) - starts[probe_of_group]).astype(np.uint64)
        groups = g_lo[probe_of_group] + intra
        base_prefix = groups << layer.u_offset_bits
        off_lo = np.maximum(lo[probe_of_group], base_prefix) - base_prefix
        off_hi = (
            np.minimum(hi[probe_of_group], base_prefix + layer.u_offset_mask)
            - base_prefix
        )
        if self._guard and layer.offset_bits:
            flip = (
                splitmix64_array(groups, seed=layer.guard_seed) & np.uint64(1)
            ).astype(bool)
            flipped_lo = np.where(flip, layer.u_offset_mask - off_hi, off_lo)
            off_hi = np.where(flip, layer.u_offset_mask - off_lo, off_hi)
            off_lo = flipped_lo
        width = off_hi - off_lo + np.uint64(1)
        field_mask = (_U64_ONES >> (np.uint64(64) - width)) << off_lo
        hit = np.ones(total, dtype=bool)
        for seed in layer.seeds:
            word_index = splitmix64_array(groups, seed=seed) % layer.u_num_words
            words = self._bits.read_fields(
                layer.u_seg_base + word_index * layer.u_word_bits,
                layer.word_bits,
            )
            hit &= (words & field_mask) != np.uint64(0)
        probe_hit = np.zeros(idx.size, dtype=bool)
        probe_hit[probe_of_group[hit]] = True
        ans[idx] = probe_hit
        return ans

    # -- probe oracles consumed by the planner -------------------------
    def _probe_bit(self, layer_index: int, prefix: int) -> bool:
        if layer_index == self._exact_layer_index:
            return self._exact.test_bit(prefix)
        layer = self._layers[layer_index]
        group = prefix >> layer.offset_bits
        offset = self._offset(layer, prefix)
        for seed in layer.seeds:
            if not self._bits.test_bit(self._word_base(layer, group, seed) + offset):
                return False
        return True

    def _probe_mask(self, layer_index: int, p_lo: int, p_hi: int) -> bool:
        if layer_index == self._exact_layer_index:
            return self._exact.any_in_range(p_lo, p_hi)
        layer = self._layers[layer_index]
        g_lo = p_lo >> layer.offset_bits
        g_hi = p_hi >> layer.offset_bits
        if g_hi - g_lo >= _MAX_MASK_GROUPS:
            return True  # beyond the rated range budget: sound "maybe"
        if g_hi - g_lo >= _SCALAR_MASK_GROUPS:
            # Wide probes resolve through the vectorized field reader.
            return bool(
                self._resolve_masks_layer(
                    layer_index,
                    np.array([p_lo], dtype=np.uint64),
                    np.array([p_hi], dtype=np.uint64),
                )[0]
            )
        for group in range(g_lo, g_hi + 1):
            base = group << layer.offset_bits
            off_lo = max(p_lo, base) - base
            off_hi = min(p_hi, base + layer.offset_mask) - base
            if self._guard and layer.offset_bits:
                if splitmix64(group, seed=layer.guard_seed) & 1:
                    off_lo, off_hi = (
                        layer.offset_mask - off_hi,
                        layer.offset_mask - off_lo,
                    )
            mask = ((1 << (off_hi - off_lo + 1)) - 1) << off_lo
            hit = True
            for seed in layer.seeds:
                word = self._bits.read_field(
                    self._word_base(layer, group, seed), layer.word_bits
                )
                if not (word & mask):
                    hit = False
                    break
            if hit:
                return True
        return False

    # ------------------------------------------------------------------
    # merging (word-level union of same-config filters)
    # ------------------------------------------------------------------
    def union_into(self, target: "BloomRF") -> "BloomRF":
        """OR this filter's words into ``target`` (configs must be equal).

        Because every insert is a deterministic OR of bit positions fixed by
        ``(config, seed)``, the union of two same-config filters is
        bit-identical to a filter built by replaying both insert streams —
        so LSM compaction can union filter blocks instead of re-hashing
        every key (asserted by the merge tests).  ``num_keys`` accumulates
        the *insert counts* (duplicates across operands included), matching
        what replaying both streams would report.
        """
        if self.config != target.config:
            raise ValueError(
                "cannot union filters with different configs: "
                f"{self.config.describe()} vs {target.config.describe()}"
            )
        target._bits.union_with(self._bits)
        if self._exact is not None:
            target._exact.union_with(self._exact)
        target._num_keys += self._num_keys
        return target

    @classmethod
    def merge(cls, filters: Sequence["BloomRF"]) -> "BloomRF":
        """Union any number of same-config filters into a fresh one."""
        if not filters:
            raise ValueError("merge requires at least one filter")
        merged = cls(filters[0].config)
        for filt in filters:
            filt.union_into(merged)
        return merged

    # ------------------------------------------------------------------
    # serialization (the paper persists filters as SST filter blocks)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to a framed byte string (see :mod:`repro.serial`).

        The versioned frame carries the config + insert count as its JSON
        header and the raw PMHF/exact bit-array words as payloads, so a
        round-trip reconstructs the filter bit for bit.
        """
        from repro import serial

        payloads = [self._bits.to_bytes()]
        if self._exact is not None:
            payloads.append(self._exact.to_bytes())
        return serial.pack_frame(
            serial.KIND_BLOOMRF,
            {"config": self.config.to_dict(), "num_keys": self._num_keys},
            *payloads,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomRF":
        """Reconstruct a filter serialized with :meth:`to_bytes`.

        Raises :class:`ValueError` on a bad magic, an unsupported format
        version, truncation, or payload/config size disagreement.
        """
        from repro import serial

        header, payloads = serial.unpack_frame(
            data, expect_kind=serial.KIND_BLOOMRF
        )
        config = BloomRFConfig.from_dict(header["config"])
        filt = cls(config)
        expected = 2 if filt._exact is not None else 1
        if len(payloads) != expected:
            raise ValueError(
                f"bloomRF frame carries {len(payloads)} payloads, "
                f"expected {expected} for this config"
            )
        # A memoryview payload (a mapped frame) becomes a zero-copy,
        # read-only word view — probes fault in only the pages they touch.
        load = (
            BitArray.from_buffer
            if isinstance(payloads[0], memoryview)
            else BitArray.from_bytes
        )
        filt._bits = load(payloads[0], filt._bits.num_bits)
        if filt._exact is not None:
            filt._exact = load(payloads[1], config.exact_bitmap_bits)
        filt._num_keys = int(header["num_keys"])
        return filt

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def basic(
        cls,
        n_keys: int,
        bits_per_key: float,
        domain_bits: int = 64,
        delta: int = 7,
        seed: int = 0x5EED,
    ) -> "BloomRF":
        """Tuning-free basic bloomRF (Sect. 3-5; rated for ranges <= 2^14)."""
        return cls(
            BloomRFConfig.basic(
                n_keys=n_keys,
                bits_per_key=bits_per_key,
                domain_bits=domain_bits,
                delta=delta,
                seed=seed,
            )
        )

    @classmethod
    def tuned(
        cls,
        n_keys: int,
        bits_per_key: float,
        max_range: int,
        domain_bits: int = 64,
        point_weight: float = 4.0,
        seed: int = 0x5EED,
    ) -> "BloomRF":
        """Advisor-tuned bloomRF for ranges up to ``max_range`` (Sect. 7)."""
        from repro.core.advisor import TuningAdvisor

        advisor = TuningAdvisor(domain_bits=domain_bits, point_weight=point_weight)
        config = advisor.configure(
            n_keys=n_keys, total_bits=int(n_keys * bits_per_key), max_range=max_range
        )
        return cls(
            BloomRFConfig.from_dict({**config.to_dict(), "seed": seed})
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomRF(keys={self._num_keys}, bits={self.size_bits}, "
            f"{self.config.describe()})"
        )


def max_supported_key(filt: BloomRF) -> int:
    """Largest key the filter's domain admits (helper for workloads)."""
    return domain_max(filt.domain_bits)
