"""The bloomRF point-range filter (the paper's primary contribution).

Layout
------
All PMHF segments live in one :class:`~repro.bitarray.BitArray`, each segment
64-bit aligned; the optional exact-level bitmap is a second bit array.  Layer
``i`` owns a window of ``W_i = segment_bits / word_bits_i`` words inside its
segment; its piecewise-monotone hash function maps a key ``x`` to the global
bit position::

    MH_i(x) = seg_base_i
              + (h_i(x >> (l_i + delta_i - 1)) mod W_i) * word_bits_i
              + ((x >> l_i) & (word_bits_i - 1))

i.e. the hash sees only the part of the prefix *above* the word, so the low
``delta_i - 1`` prefix bits select the bit inside the word and local order is
preserved (Sect. 3.2; verified bit-for-bit against the paper's Fig. 4
example in the tests).  Replicated hash functions (Sect. 7) repeat the word
placement with independent seeds; the in-word offset is shared, so replicas
preserve the same local order.

Operations
----------
* ``insert`` / ``contains_point`` behave like a Bloom filter over the key's
  prefix code (Sect. 4), plus the exact bitmap when configured.
* ``contains_range`` runs the two-path Algorithm 1 via
  :func:`repro.dyadic.two_path_range_lookup`; covering probes test one bit
  per replica and decomposition probes read at most two aligned words per
  path per layer.
* ``insert_many`` / ``contains_point_many`` are NumPy-vectorized bulk paths
  computing bit-identical positions to the scalar ones.

Thread-safety: mutation happens through single NumPy word-level OR
operations, which CPython executes atomically under the GIL, so concurrent
inserts and probes never observe torn words (they may race benignly, exactly
like the paper's parallel filter).
"""

from __future__ import annotations

import json
from typing import Sequence

import numpy as np

from repro._util import check_key, domain_max
from repro.bitarray import BitArray
from repro.core.config import BloomRFConfig
from repro.dyadic import two_path_range_lookup
from repro.hashing import splitmix64, splitmix64_array, splitmix64_multi_seed

__all__ = ["BloomRF"]

# Probing an enormous prefix range word-by-word (possible only for queries
# far beyond the configured range budget) is cut off conservatively: the
# filter answers "maybe" — sound, never a false negative.
_MAX_MASK_GROUPS = 1 << 16


class _Layer:
    """Precomputed per-layer probe geometry (internal)."""

    __slots__ = (
        "index",
        "level",
        "delta",
        "word_bits",
        "offset_bits",
        "offset_mask",
        "seg_base",
        "num_words",
        "seeds",
    )

    def __init__(
        self,
        index: int,
        level: int,
        delta: int,
        seg_base: int,
        seg_bits: int,
        seeds: Sequence[int],
    ) -> None:
        self.index = index
        self.level = level
        self.delta = delta
        self.word_bits = 1 << (delta - 1)
        self.offset_bits = delta - 1
        self.offset_mask = self.word_bits - 1
        self.seg_base = seg_base
        self.num_words = seg_bits // self.word_bits
        self.seeds = list(seeds)


class BloomRF:
    """Unified point-range filter with prefix hashing and PMHF."""

    def __init__(self, config: BloomRFConfig) -> None:
        self.config = config
        self._d = config.domain_bits
        # Segments are packed into one bit array with 64-bit-aligned bases,
        # so every power-of-two word read stays within one storage word.
        seg_bases: list[int] = []
        base = 0
        for seg in config.segment_bits:
            seg_bases.append(base)
            base += (seg + 63) & ~63
        self._bits = BitArray(max(base, 64))

        self._layers: list[_Layer] = []
        seed_cursor = 0
        for i in range(config.num_layers):
            replica_seeds = [
                splitmix64(seed_cursor + r, seed=config.seed)
                for r in range(config.replicas[i])
            ]
            seed_cursor += config.replicas[i]
            seg = config.segment_of[i]
            self._layers.append(
                _Layer(
                    index=i,
                    level=config.levels[i],
                    delta=config.deltas[i],
                    seg_base=seg_bases[seg],
                    seg_bits=config.segment_bits[seg],
                    seeds=replica_seeds,
                )
            )

        self._exact: BitArray | None = None
        if config.exact_level is not None:
            self._exact = BitArray(config.exact_bitmap_bits)

        # Flattened (layer, replica) geometry so the scalar insert runs one
        # tight loop without per-layer indirection.
        self._flat_geometry: list[tuple[int, ...]] = [
            (
                layer.level,
                layer.offset_bits,
                layer.offset_mask,
                layer.word_bits,
                layer.num_words,
                layer.seg_base,
                seed,
                layer.seeds[0] ^ 0xA5A5,  # guard hash is per layer, not replica
            )
            for layer in self._layers
            for seed in layer.seeds
        ]

        # Planner layer list: PMHF layers bottom-up, exact bitmap as the
        # pseudo top layer when configured.
        self._planner_levels: list[int] = [layer.level for layer in self._layers]
        self._exact_layer_index: int | None = None
        if self._exact is not None:
            self._exact_layer_index = len(self._planner_levels)
            self._planner_levels.append(config.exact_level)

        self._num_keys = 0
        self._guard = config.degenerate_guard

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def num_keys(self) -> int:
        """Number of insert operations performed (duplicates included)."""
        return self._num_keys

    @property
    def size_bits(self) -> int:
        """Total occupied filter size in bits."""
        return self.config.total_bits

    @property
    def bits_per_key(self) -> float:
        """Space per inserted key; ``inf`` for an empty filter."""
        if self._num_keys == 0:
            return float("inf")
        return self.size_bits / self._num_keys

    @property
    def domain_bits(self) -> int:
        return self._d

    def fill_ratio(self) -> float:
        """Fraction of PMHF bits set (diagnostic; Fig. 5 uses this)."""
        return self._bits.fill_ratio()

    @property
    def pmhf_bits(self) -> BitArray:
        """The raw PMHF bit array (read-only use: scatter diagnostics)."""
        return self._bits

    # ------------------------------------------------------------------
    # position computation (scalar)
    # ------------------------------------------------------------------
    def _offset(self, layer: _Layer, prefix: int) -> int:
        """In-word offset of a level-``l_i`` prefix, honoring the guard."""
        off = prefix & layer.offset_mask
        if self._guard and layer.offset_bits:
            group = prefix >> layer.offset_bits
            if splitmix64(group, seed=layer.seeds[0] ^ 0xA5A5) & 1:
                off = layer.offset_mask - off
        return off

    def _word_base(self, layer: _Layer, group: int, seed: int) -> int:
        """Global bit position of the layer word for prefix-group ``group``."""
        word_index = splitmix64(group, seed=seed) % layer.num_words
        return layer.seg_base + word_index * layer.word_bits

    def _iter_positions(self, key: int):
        """Yield every PMHF bit position of ``key`` (all layers, replicas)."""
        for layer in self._layers:
            prefix = key >> layer.level
            group = prefix >> layer.offset_bits
            offset = self._offset(layer, prefix)
            for seed in layer.seeds:
                yield self._word_base(layer, group, seed) + offset

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        """Insert one key (sets ``r_i`` bits per layer plus the exact bit).

        Runs one tight loop over the flattened (layer, replica) geometry —
        bit-identical to the per-layer arithmetic (asserted by the tests).
        """
        check_key(key, self._d)
        words = self._bits.words
        guard = self._guard
        for level, offbits, offmask, wordbits, numwords, segbase, seed, gseed in (
            self._flat_geometry
        ):
            prefix = key >> level
            group = prefix >> offbits
            offset = prefix & offmask
            if guard and offbits and splitmix64(group, seed=gseed) & 1:
                offset = offmask - offset
            pos = segbase + splitmix64(group, seed=seed) % numwords * wordbits + offset
            words[pos >> 6] |= np.uint64(1 << (pos & 63))
        if self._exact is not None:
            self._exact.set_bit(key >> self.config.exact_level)
        self._num_keys += 1

    def insert_many(self, keys: np.ndarray) -> None:
        """Vectorized bulk insert of a ``uint64`` key array."""
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        for layer in self._layers:
            prefix = keys >> np.uint64(layer.level)
            group = prefix >> np.uint64(layer.offset_bits)
            offset = self._offsets_array(layer, prefix, group)
            for seed in layer.seeds:
                word_index = splitmix64_array(group, seed=seed) % np.uint64(
                    layer.num_words
                )
                pos = (
                    np.uint64(layer.seg_base)
                    + word_index * np.uint64(layer.word_bits)
                    + offset
                )
                self._bits.set_bits(pos)
        if self._exact is not None:
            self._exact.set_bits(keys >> np.uint64(self.config.exact_level))
        self._num_keys += int(keys.size)

    def _offsets_array(
        self, layer: _Layer, prefix: np.ndarray, group: np.ndarray
    ) -> np.ndarray:
        offset = prefix & np.uint64(layer.offset_mask)
        if self._guard and layer.offset_bits:
            flip = (
                splitmix64_array(group, seed=layer.seeds[0] ^ 0xA5A5)
                & np.uint64(1)
            ).astype(bool)
            offset = np.where(
                flip, np.uint64(layer.offset_mask) - offset, offset
            )
        return offset

    # ------------------------------------------------------------------
    # point lookup
    # ------------------------------------------------------------------
    def contains_point(self, key: int) -> bool:
        """Approximate membership test; may return a false positive only."""
        check_key(key, self._d)
        if self._exact is not None and not self._exact.test_bit(
            key >> self.config.exact_level
        ):
            return False
        for pos in self._iter_positions(key):
            if not self._bits.test_bit(pos):
                return False
        return True

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized point lookup: boolean array per key."""
        keys = np.asarray(keys, dtype=np.uint64)
        result = np.ones(keys.size, dtype=bool)
        if self._exact is not None:
            result &= self._exact.test_bits(
                keys >> np.uint64(self.config.exact_level)
            )
        for layer in self._layers:
            if not result.any():
                break
            prefix = keys >> np.uint64(layer.level)
            group = prefix >> np.uint64(layer.offset_bits)
            offset = self._offsets_array(layer, prefix, group)
            for seed in layer.seeds:
                word_index = splitmix64_array(group, seed=seed) % np.uint64(
                    layer.num_words
                )
                pos = (
                    np.uint64(layer.seg_base)
                    + word_index * np.uint64(layer.word_bits)
                    + offset
                )
                result &= self._bits.test_bits(pos)
        return result

    __contains__ = contains_point

    # ------------------------------------------------------------------
    # range lookup (Algorithm 1)
    # ------------------------------------------------------------------
    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Approximate emptiness test of ``[l_key, r_key]`` (inclusive).

        Returns False only when the filter *proves* no inserted key lies in
        the interval; True means "possibly non-empty".  Constant O(k) word
        accesses regardless of the interval length (Sect. 5).
        """
        check_key(l_key, self._d)
        check_key(r_key, self._d)
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        return two_path_range_lookup(
            l_key, r_key, self._planner_levels, self._probe_bit, self._probe_mask
        )

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Range lookup over an ``(n, 2)`` array of inclusive bounds."""
        bounds = np.asarray(bounds)
        return np.fromiter(
            (
                self.contains_range(int(lo), int(hi))
                for lo, hi in zip(bounds[:, 0], bounds[:, 1])
            ),
            dtype=bool,
            count=bounds.shape[0],
        )

    # -- probe oracles consumed by the planner -------------------------
    def _probe_bit(self, layer_index: int, prefix: int) -> bool:
        if layer_index == self._exact_layer_index:
            return self._exact.test_bit(prefix)
        layer = self._layers[layer_index]
        group = prefix >> layer.offset_bits
        offset = self._offset(layer, prefix)
        for seed in layer.seeds:
            if not self._bits.test_bit(self._word_base(layer, group, seed) + offset):
                return False
        return True

    def _probe_mask(self, layer_index: int, p_lo: int, p_hi: int) -> bool:
        if layer_index == self._exact_layer_index:
            return self._exact.any_in_range(p_lo, p_hi)
        layer = self._layers[layer_index]
        g_lo = p_lo >> layer.offset_bits
        g_hi = p_hi >> layer.offset_bits
        if g_hi - g_lo >= _MAX_MASK_GROUPS:
            return True  # beyond the rated range budget: sound "maybe"
        for group in range(g_lo, g_hi + 1):
            base = group << layer.offset_bits
            off_lo = max(p_lo, base) - base
            off_hi = min(p_hi, base + layer.offset_mask) - base
            if self._guard and layer.offset_bits:
                if splitmix64(group, seed=layer.seeds[0] ^ 0xA5A5) & 1:
                    off_lo, off_hi = (
                        layer.offset_mask - off_hi,
                        layer.offset_mask - off_lo,
                    )
            mask = ((1 << (off_hi - off_lo + 1)) - 1) << off_lo
            hit = True
            for seed in layer.seeds:
                word = self._bits.read_field(
                    self._word_base(layer, group, seed), layer.word_bits
                )
                if not (word & mask):
                    hit = False
                    break
            if hit:
                return True
        return False

    # ------------------------------------------------------------------
    # serialization (the paper persists filters as SST filter blocks)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize config + bit arrays to a self-describing byte string."""
        header = json.dumps(
            {"config": self.config.to_dict(), "num_keys": self._num_keys}
        ).encode()
        body = self._bits.to_bytes()
        exact = self._exact.to_bytes() if self._exact is not None else b""
        return (
            len(header).to_bytes(4, "little")
            + header
            + len(body).to_bytes(8, "little")
            + body
            + exact
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomRF":
        """Reconstruct a filter serialized with :meth:`to_bytes`."""
        header_len = int.from_bytes(data[:4], "little")
        header = json.loads(data[4 : 4 + header_len].decode())
        config = BloomRFConfig.from_dict(header["config"])
        cursor = 4 + header_len
        body_len = int.from_bytes(data[cursor : cursor + 8], "little")
        cursor += 8
        filt = cls(config)
        filt._bits = BitArray.from_bytes(
            data[cursor : cursor + body_len], filt._bits.num_bits
        )
        cursor += body_len
        if filt._exact is not None:
            filt._exact = BitArray.from_bytes(
                data[cursor:], config.exact_bitmap_bits
            )
        filt._num_keys = header["num_keys"]
        return filt

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def basic(
        cls,
        n_keys: int,
        bits_per_key: float,
        domain_bits: int = 64,
        delta: int = 7,
        seed: int = 0x5EED,
    ) -> "BloomRF":
        """Tuning-free basic bloomRF (Sect. 3-5; rated for ranges <= 2^14)."""
        return cls(
            BloomRFConfig.basic(
                n_keys=n_keys,
                bits_per_key=bits_per_key,
                domain_bits=domain_bits,
                delta=delta,
                seed=seed,
            )
        )

    @classmethod
    def tuned(
        cls,
        n_keys: int,
        bits_per_key: float,
        max_range: int,
        domain_bits: int = 64,
        point_weight: float = 4.0,
        seed: int = 0x5EED,
    ) -> "BloomRF":
        """Advisor-tuned bloomRF for ranges up to ``max_range`` (Sect. 7)."""
        from repro.core.advisor import TuningAdvisor

        advisor = TuningAdvisor(domain_bits=domain_bits, point_weight=point_weight)
        config = advisor.configure(
            n_keys=n_keys, total_bits=int(n_keys * bits_per_key), max_range=max_range
        )
        return cls(
            BloomRFConfig.from_dict({**config.to_dict(), "seed": seed})
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomRF(keys={self._num_keys}, bits={self.size_bits}, "
            f"{self.config.describe()})"
        )


def max_supported_key(filt: BloomRF) -> int:
    """Largest key the filter's domain admits (helper for workloads)."""
    return domain_max(filt.domain_bits)
