"""bloomRF configuration: layer layout, segments, replicas, exact level.

Terminology follows the paper (Table 1):

* ``d`` (``domain_bits``) — keys live in ``[0, 2**d)``.
* layers ``i = 0 .. k-1`` — one piecewise-monotone hash function family per
  layer; layer ``i`` is responsible for dyadic level ``l_i``.
* ``deltas`` — the level-distance vector, stored **bottom-up**:
  ``deltas[i]`` is the gap between layer ``i``'s level and the next layer's
  level, so ``l_i = sum(deltas[:i])`` (the paper prints the same vector
  top-down).  ``deltas[k-1]`` is the gap from the top layer to the exact
  level / omitted region, and also fixes the top layer's word size.
* word size of layer ``i`` is ``2**(deltas[i]-1)`` bits, so a parent DI spans
  exactly two words and any decomposition probe costs at most two word reads
  per path per layer (Sect. 3.2 / Sect. 4).
* ``replicas[i]`` (``r_i``) — replicated hash functions per layer (Sect. 7).
* ``segment_of[i]`` — which bit-array segment stores layer ``i``;
  ``segment_bits[s]`` are the per-segment budgets (``m_2``/``m_3`` style).
* ``exact_level`` — if set, the level stored as an exact bitmap of
  ``2**(d - exact_level)`` bits (Sect. 7 "Memory Management"); it must equal
  ``sum(deltas)``, i.e. sit directly above the top layer.

The configuration is a frozen dataclass: filters built from equal configs and
equal seeds are bit-identical, which the serialization round-trip relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro._util import ceil_div, round_up

__all__ = ["BloomRFConfig", "MAX_DELTA", "MIN_DELTA"]

# Word size is 2**(delta-1) bits and must fit one uint64 storage word.
MAX_DELTA = 7
MIN_DELTA = 1

_STORAGE_WORD_BITS = 64


@dataclass(frozen=True)
class BloomRFConfig:
    """Complete static description of a bloomRF filter."""

    domain_bits: int
    deltas: tuple[int, ...]
    replicas: tuple[int, ...]
    segment_of: tuple[int, ...]
    segment_bits: tuple[int, ...]
    exact_level: int | None = None
    seed: int = 0x5EED
    degenerate_guard: bool = False
    levels: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        self._validate()
        levels = []
        acc = 0
        for delta in self.deltas:
            levels.append(acc)
            acc += delta
        object.__setattr__(self, "levels", tuple(levels))

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        d = self.domain_bits
        if not 1 <= d <= 64:
            raise ValueError(f"domain_bits must be in [1, 64], got {d}")
        k = len(self.deltas)
        if k == 0:
            raise ValueError("at least one layer is required")
        for delta in self.deltas:
            if not MIN_DELTA <= delta <= MAX_DELTA:
                raise ValueError(
                    f"every delta must be in [{MIN_DELTA}, {MAX_DELTA}], got {delta}"
                )
        if len(self.replicas) != k or any(r < 1 for r in self.replicas):
            raise ValueError("replicas must list one positive count per layer")
        if len(self.segment_of) != k:
            raise ValueError("segment_of must list one segment per layer")
        num_segments = len(self.segment_bits)
        if num_segments == 0:
            raise ValueError("at least one segment is required")
        if any(not 0 <= s < num_segments for s in self.segment_of):
            raise ValueError("segment_of entries must index segment_bits")
        top = sum(self.deltas)
        if top > d:
            raise ValueError(
                f"levels exceed the domain: sum(deltas)={top} > domain_bits={d}"
            )
        if self.exact_level is not None and self.exact_level != top:
            raise ValueError(
                f"exact_level must sit directly above the top layer "
                f"(expected {top}, got {self.exact_level})"
            )
        for s, bits in enumerate(self.segment_bits):
            word = self.max_word_bits_in_segment(s)
            if bits < word:
                raise ValueError(
                    f"segment {s} has {bits} bits, smaller than its word size {word}"
                )
            if bits % word:
                raise ValueError(
                    f"segment {s} size {bits} is not a multiple of its "
                    f"word size {word}"
                )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        """``k`` — the number of PMHF layers."""
        return len(self.deltas)

    @property
    def top_boundary_level(self) -> int:
        """First level *above* the top layer's band (= exact level if any)."""
        return sum(self.deltas)

    def word_bits(self, layer: int) -> int:
        """PMHF word size of ``layer`` in bits (``2**(delta_i - 1)``)."""
        return 1 << (self.deltas[layer] - 1)

    def max_word_bits_in_segment(self, segment: int) -> int:
        words = [
            self.word_bits(i)
            for i in range(self.num_layers)
            if self.segment_of[i] == segment
        ]
        return max(words, default=1)

    @property
    def exact_bitmap_bits(self) -> int:
        """Size of the exact-level bitmap (0 when no exact level is used)."""
        if self.exact_level is None:
            return 0
        return 1 << (self.domain_bits - self.exact_level)

    @property
    def total_bits(self) -> int:
        """Total filter size in bits (PMHF segments + exact bitmap)."""
        return sum(self.segment_bits) + self.exact_bitmap_bits

    def bits_per_key(self, n_keys: int) -> float:
        """Space efficiency for a given key count."""
        return self.total_bits / n_keys

    def hash_count_in_segment(self, segment: int) -> int:
        """``k'`` of Sect. 7: total hash functions writing into ``segment``."""
        return sum(
            r
            for i, r in enumerate(self.replicas)
            if self.segment_of[i] == segment
        )

    def describe(self) -> str:
        """Paper-style one-line summary (top-down delta vector)."""
        deltas_td = tuple(reversed(self.deltas))
        reps_td = tuple(reversed(self.replicas))
        segs_td = tuple(reversed(self.segment_of))
        exact = f", exact_level={self.exact_level}" if self.exact_level is not None else ""
        return (
            f"BloomRFConfig(d={self.domain_bits}, k={self.num_layers}, "
            f"Delta={deltas_td}, r={reps_td}, seg={segs_td}, "
            f"segment_bits={self.segment_bits}{exact})"
        )

    # ------------------------------------------------------------------
    # canonical constructors
    # ------------------------------------------------------------------
    @classmethod
    def basic(
        cls,
        n_keys: int,
        bits_per_key: float,
        domain_bits: int = 64,
        delta: int = 7,
        seed: int = 0x5EED,
    ) -> "BloomRFConfig":
        """The tuning-free *basic* bloomRF of Sect. 3-5.

        Equidistant levels ``l_i = i*delta``, a single shared segment of
        ``n_keys * bits_per_key`` bits, one hash function per layer and no
        exact level.  The layer count follows the paper's
        ``k = ceil((d - log2 n)/delta)``; with the exact (non-integer)
        ``log2 n`` this reproduces both worked examples in the paper
        (d=16, n=3, delta=4 -> k=4; d=64, n=2M, delta=7 -> k=6) when the
        ratio is rounded to the nearest integer, which is what we do.
        """
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        if bits_per_key <= 0:
            raise ValueError(f"bits_per_key must be positive, got {bits_per_key}")
        saturation_free = domain_bits - math.log2(n_keys)
        k = max(1, math.floor(saturation_free / delta + 0.5))
        k = min(k, ceil_div(domain_bits, delta))
        while k * delta > domain_bits:
            k -= 1
        k = max(k, 1)
        word = 1 << (delta - 1)
        m = round_up(max(int(n_keys * bits_per_key), word), _STORAGE_WORD_BITS)
        return cls(
            domain_bits=domain_bits,
            deltas=(delta,) * k,
            replicas=(1,) * k,
            segment_of=(0,) * k,
            segment_bits=(m,),
            exact_level=None,
            seed=seed,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "BloomRFConfig":
        """Inverse of :meth:`to_dict` (used by serialization)."""
        return cls(
            domain_bits=data["domain_bits"],
            deltas=tuple(data["deltas"]),
            replicas=tuple(data["replicas"]),
            segment_of=tuple(data["segment_of"]),
            segment_bits=tuple(data["segment_bits"]),
            exact_level=data["exact_level"],
            seed=data["seed"],
            degenerate_guard=data.get("degenerate_guard", False),
        )

    def to_dict(self) -> dict:
        """Plain-dict form for JSON-style serialization."""
        return {
            "domain_bits": self.domain_bits,
            "deltas": list(self.deltas),
            "replicas": list(self.replicas),
            "segment_of": list(self.segment_of),
            "segment_bits": list(self.segment_bits),
            "exact_level": self.exact_level,
            "seed": self.seed,
            "degenerate_guard": self.degenerate_guard,
        }


def basic_layer_count(n_keys: int, domain_bits: int, delta: int) -> int:
    """Expose the basic-config layer-count rule for models and tests."""
    saturation_free = domain_bits - math.log2(n_keys)
    k = max(1, math.floor(saturation_free / delta + 0.5))
    while k * delta > domain_bits:
        k -= 1
    return max(k, 1)
