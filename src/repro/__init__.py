"""repro — a reproduction of bloomRF (EDBT 2023).

bloomRF is a unified *point-range filter*: an approximate membership
structure that answers both "is key x in the set?" and "is any key in
[a, b]?" with no false negatives, online insertions and constant query
complexity.  This package implements the paper's filter, its tuning advisor
and analytic models, every baseline from its evaluation (Bloom, Prefix-Bloom,
fence pointers, Cuckoo, Rosetta, SuRF), an LSM-tree substrate standing in for
RocksDB, and the workload generators needed to reproduce the paper's
experiments.

Quickstart (the one filter API)::

    import numpy as np
    from repro import FilterSpec, make_filter, open_store

    # Any registered filter kind builds from a spec (plain, JSON-able data).
    spec = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})
    filt = make_filter(spec, n_keys=100_000)
    keys = np.random.default_rng(7).integers(0, 1 << 64, 100_000, dtype=np.uint64)
    filt.insert_many(keys)
    filt.contains_point(int(keys[0]))          # True (never a false negative)
    filt.contains_range(1000, 1 << 20)         # True or False (maybe/no)

    # The same spec drives a whole LSM store (sharded with shards=N).
    db = open_store(filter=spec, shards=1)
    db.put_many(keys)
    db.get_many(keys[:100])                    # all True
"""

from repro.api import (
    FilterSpec,
    NullFilter,
    RangeFilter,
    Store,
    available_kinds,
    filter_from_bytes,
    make_filter,
    open_store,
    register_filter,
    standard_spec,
)
from repro.core import (
    AdvisorReport,
    AttributeSpec,
    BloomRF,
    BloomRFConfig,
    FloatBloomRF,
    FprProfile,
    MultiAttributeBloomRF,
    StringBloomRF,
    TuningAdvisor,
    basic_point_fpr,
    basic_range_fpr_bound,
    extended_fpr_profile,
    float_to_key,
    key_to_float,
    string_range_keys,
    string_to_point_key,
)
from repro.lsm.filter_policy import SpecPolicy
from repro.lsm.sharded import ShardedLsmDB
from repro.shard import ShardedBloomRF

__version__ = "1.9.0"

__all__ = [
    "BloomRF",
    "BloomRFConfig",
    "FilterSpec",
    "RangeFilter",
    "Store",
    "SpecPolicy",
    "NullFilter",
    "available_kinds",
    "filter_from_bytes",
    "make_filter",
    "open_store",
    "register_filter",
    "standard_spec",
    "ShardedBloomRF",
    "ShardedLsmDB",
    "TuningAdvisor",
    "AdvisorReport",
    "FprProfile",
    "basic_point_fpr",
    "basic_range_fpr_bound",
    "extended_fpr_profile",
    "AttributeSpec",
    "FloatBloomRF",
    "MultiAttributeBloomRF",
    "StringBloomRF",
    "float_to_key",
    "key_to_float",
    "string_range_keys",
    "string_to_point_key",
    "__version__",
]
