"""repro — a reproduction of bloomRF (EDBT 2023).

bloomRF is a unified *point-range filter*: an approximate membership
structure that answers both "is key x in the set?" and "is any key in
[a, b]?" with no false negatives, online insertions and constant query
complexity.  This package implements the paper's filter, its tuning advisor
and analytic models, every baseline from its evaluation (Bloom, Prefix-Bloom,
fence pointers, Cuckoo, Rosetta, SuRF), an LSM-tree substrate standing in for
RocksDB, and the workload generators needed to reproduce the paper's
experiments.

Quickstart::

    import numpy as np
    from repro import BloomRF

    keys = np.random.default_rng(7).integers(0, 1 << 64, 100_000, dtype=np.uint64)
    filt = BloomRF.tuned(n_keys=len(keys), bits_per_key=16, max_range=1 << 20)
    filt.insert_many(keys)

    filt.contains_point(int(keys[0]))          # True (never a false negative)
    filt.contains_range(1000, 1 << 20)         # True or False (maybe/no)
"""

from repro.core import (
    AdvisorReport,
    AttributeSpec,
    BloomRF,
    BloomRFConfig,
    FloatBloomRF,
    FprProfile,
    MultiAttributeBloomRF,
    StringBloomRF,
    TuningAdvisor,
    basic_point_fpr,
    basic_range_fpr_bound,
    extended_fpr_profile,
    float_to_key,
    key_to_float,
    string_range_keys,
    string_to_point_key,
)
from repro.lsm.sharded import ShardedLsmDB
from repro.shard import ShardedBloomRF

__version__ = "1.2.0"

__all__ = [
    "BloomRF",
    "BloomRFConfig",
    "ShardedBloomRF",
    "ShardedLsmDB",
    "TuningAdvisor",
    "AdvisorReport",
    "FprProfile",
    "basic_point_fpr",
    "basic_range_fpr_bound",
    "extended_fpr_profile",
    "AttributeSpec",
    "FloatBloomRF",
    "MultiAttributeBloomRF",
    "StringBloomRF",
    "float_to_key",
    "key_to_float",
    "string_range_keys",
    "string_to_point_key",
    "__version__",
]
