"""repro.api — one filter API: protocol, specs, registry, and the store facade.

The paper's headline claim is that bloomRF is a *drop-in* replacement for
point/range filters inside an LSM store (Sect. 1, Sect. 6).  This module
makes "drop-in" literal for the whole package:

* :class:`RangeFilter` — the runtime-checkable protocol every filter in the
  package satisfies: online inserts (scalar + bulk), point and range probes
  (scalar + bulk), ``size_bits`` accounting, and framed serialization.
* :class:`FilterSpec` — a frozen, validated, JSON-round-trippable value
  describing *which* filter to build and with *which* parameters.  Specs are
  plain data: they travel through config files, CLI flags, shard manifests,
  and policy objects unchanged.
* the registry — :func:`register_filter` / :func:`make_filter` /
  :func:`filter_from_bytes` / :func:`available_kinds`: one construction and
  one deserialization path for every kind (core bloomRF, every baseline,
  sharded sets), replacing the per-consumer dispatch tables that
  ``lsm/filter_policy.py``, ``serial.py``, ``cli.py``, and the bench harness
  each used to keep.
* :func:`open_store` — the one-call facade returning an
  :class:`~repro.lsm.db.LsmDB` (``shards=1``) or
  :class:`~repro.lsm.sharded.ShardedLsmDB` (``shards>1``) behind the
  :class:`Store` interface, with the filter chosen by a :class:`FilterSpec`.

Everything downstream (``SpecPolicy``, the CLI, the harness) is a thin layer
over these four pieces; adding a new backend is one :func:`register_filter`
call.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro._util import check_bounds_rows
from repro.baselines.bloom import BloomFilter
from repro.baselines.cuckoo import CuckooFilter
from repro.baselines.prefix_bloom import PrefixBloomFilter
from repro.baselines.rosetta import Rosetta
from repro.baselines.surf import SuRF, SurfFilter
from repro.core.bloomrf import BloomRF
from repro.serial import (
    KIND_BLOOM,
    KIND_BLOOMRF,
    KIND_CUCKOO,
    KIND_NAMES,
    KIND_NONE,
    KIND_PREFIX_BLOOM,
    KIND_ROSETTA,
    KIND_SHARDED_BLOOMRF,
    KIND_SURF,
    SerialError,
    pack_frame,
    peek_kind,
    unpack_frame,
)
from repro.shard import ShardedBloomRF

__all__ = [
    "RangeFilter",
    "Store",
    "FilterSpec",
    "NullFilter",
    "register_filter",
    "make_filter",
    "merge_filters",
    "filter_from_bytes",
    "available_kinds",
    "standard_spec",
    "open_store",
]


# ----------------------------------------------------------------------
# the protocol
# ----------------------------------------------------------------------
@runtime_checkable
class RangeFilter(Protocol):
    """What every filter kind in the package exposes.

    Scalar and bulk forms compute bit-identical answers (asserted by the
    conformance tests); bulk bounds are ``(n, 2)`` inclusive ``[lo, hi]``
    rows.  ``to_bytes`` emits a :mod:`repro.serial` frame that
    :func:`filter_from_bytes` rehydrates with identical probe answers.
    Point-only filters (Bloom, Cuckoo) answer every range probe with a
    sound "maybe" (True) — exactly the limitation motivating point-range
    filters — so the protocol stays uniform.
    """

    def insert(self, key: int) -> Any: ...

    def insert_many(self, keys: np.ndarray) -> Any: ...

    def contains_point(self, key: int) -> bool: ...

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray: ...

    def contains_range(self, l_key: int, r_key: int) -> bool: ...

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray: ...

    @property
    def size_bits(self) -> int: ...

    def to_bytes(self) -> bytes: ...


@runtime_checkable
class Store(Protocol):
    """The one-store interface :func:`open_store` returns.

    Satisfied by both :class:`~repro.lsm.db.LsmDB` and
    :class:`~repro.lsm.sharded.ShardedLsmDB`: scalar and batched writes,
    exact reads, filter-level *maybe* probes, scans, maintenance, and
    :class:`~repro.lsm.iostats.IOStats` accounting — so callers scale from
    one engine to N partitioned engines without an API change.
    """

    def put(self, key: int, value: bytes = b"") -> None: ...

    def delete(self, key: int) -> None: ...

    def put_many(self, keys, values=None) -> None: ...

    def delete_many(self, keys) -> None: ...

    def get(self, key: int) -> bool: ...

    def get_value(self, key: int) -> bytes | None: ...

    def get_many(self, keys) -> np.ndarray: ...

    def may_contain_many(self, keys) -> np.ndarray: ...

    def scan_nonempty(self, l_key: int, r_key: int) -> bool: ...

    def scan_nonempty_many(self, bounds) -> np.ndarray: ...

    def scan_may_contain(self, bounds) -> np.ndarray: ...

    def scan(self, l_key: int, r_key: int, limit: int | None = None): ...

    def flush(self) -> None: ...

    def sync(self) -> None: ...

    def commit_barrier(self) -> None: ...

    def compact(self) -> None: ...

    def close(self) -> None: ...

    def reset_stats(self): ...


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FilterSpec:
    """Which filter to build, as plain validated data.

    ``kind`` names a registered filter kind (see :func:`available_kinds`);
    ``params`` are the keyword arguments its factory accepts, restricted to
    JSON-serializable values so a spec round-trips through
    :meth:`to_json` / :meth:`from_json` unchanged (shard manifests and CLI
    configs rely on this).  Treat specs as immutable: derive variants with
    :meth:`with_params`.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError("FilterSpec.kind must be a non-empty string")
        try:
            params = dict(self.params)
        except (TypeError, ValueError):
            raise ValueError(
                "FilterSpec.params must be a mapping of parameter names to "
                f"values, got {type(self.params).__name__}"
            ) from None
        if any(not isinstance(name, str) for name in params):
            raise ValueError("FilterSpec.params keys must be strings")
        try:
            json.dumps(params)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"FilterSpec.params must be JSON-serializable: {exc}"
            ) from None
        object.__setattr__(self, "params", params)

    # -- derivation ----------------------------------------------------
    def with_params(self, **overrides: Any) -> "FilterSpec":
        """A new spec with ``overrides`` merged over the current params."""
        return FilterSpec(self.kind, {**self.params, **overrides})

    # -- JSON round-trip ----------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "FilterSpec":
        return cls(data["kind"], dict(data.get("params", {})))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FilterSpec":
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"FilterSpec({self.kind!r}{', ' if params else ''}{params})"


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisteredKind:
    """One registry entry: how to build, load, and merge a filter kind."""

    kind: str
    build: Callable[..., RangeFilter] | None
    serial_kind: int | None = None
    from_bytes: Callable[[bytes], Any] | None = None
    merge: Callable[[list], Any] | None = None
    description: str = ""


_REGISTRY: dict[str, RegisteredKind] = {}
_SERIAL_LOADERS: dict[int, RegisteredKind] = {}


def register_filter(
    kind: str,
    build: Callable[..., RangeFilter] | None = None,
    *,
    serial_kind: int | None = None,
    from_bytes: Callable[[bytes], Any] | None = None,
    merge: Callable[[list], Any] | None = None,
    description: str = "",
    replace_existing: bool = False,
) -> RegisteredKind:
    """Register a filter kind with the package-wide registry.

    ``build(**params)`` constructs an empty (or self-building) filter
    satisfying :class:`RangeFilter`; ``from_bytes(data)`` rehydrates the
    frame identified by ``serial_kind``; ``merge(filters)`` optionally
    word-unions same-config instances (compaction fast path) or returns
    None.  A kind with ``build=None`` is load-only (e.g. sharded blobs).
    """
    if not isinstance(kind, str) or not kind:
        raise ValueError("filter kind must be a non-empty string")
    if kind in _REGISTRY and not replace_existing:
        raise ValueError(f"filter kind {kind!r} is already registered")
    if serial_kind is not None:
        owner = _SERIAL_LOADERS.get(serial_kind)
        if owner is not None and owner.kind != kind:
            raise ValueError(
                f"serial kind {serial_kind} is already owned by filter kind "
                f"{owner.kind!r}; registering {kind!r} over it would hijack "
                "deserialization of existing frames"
            )
    entry = RegisteredKind(
        kind=kind,
        build=build,
        serial_kind=serial_kind,
        from_bytes=from_bytes,
        merge=merge,
        description=description,
    )
    previous = _REGISTRY.get(kind)
    _REGISTRY[kind] = entry
    # Keep the loader table consistent with the registry: drop the
    # replaced entry's stale loader, then install the new one.
    if previous is not None and previous.serial_kind is not None:
        if _SERIAL_LOADERS.get(previous.serial_kind) is previous:
            del _SERIAL_LOADERS[previous.serial_kind]
    if serial_kind is not None and from_bytes is not None:
        _SERIAL_LOADERS[serial_kind] = entry
    return entry


def registered_kind(kind: str) -> RegisteredKind:
    """The registry entry for ``kind``; raises with the known kinds listed."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown filter kind {kind!r} (registered kinds: {known})"
        ) from None


def available_kinds() -> tuple[str, ...]:
    """Every kind :func:`make_filter` can construct, sorted."""
    return tuple(
        sorted(k for k, entry in _REGISTRY.items() if entry.build is not None)
    )


def make_filter(spec: FilterSpec, *, n_keys: int | None = None) -> RangeFilter:
    """Construct the filter a spec describes.

    ``n_keys`` (the expected key count, used for sizing) may live in the
    spec's params or be supplied here — the call-site value wins, which is
    how :class:`~repro.lsm.filter_policy.SpecPolicy` sizes each SST's
    filter block for the keys it actually holds.  Unknown kinds and
    parameters raise :class:`ValueError` naming the accepted ones.
    """
    entry = registered_kind(spec.kind)
    if entry.build is None:
        raise ValueError(
            f"filter kind {spec.kind!r} is load-only and cannot be built "
            "from a spec"
        )
    params = dict(spec.params)
    if n_keys is not None:
        params["n_keys"] = int(n_keys)
    try:
        inspect.signature(entry.build).bind(**params)
    except TypeError as exc:
        accepted = ", ".join(inspect.signature(entry.build).parameters)
        raise ValueError(
            f"invalid parameters for filter kind {spec.kind!r}: {exc} "
            f"(accepted: {accepted})"
        ) from None
    return entry.build(**params)


def merge_filters(kind: str, filters: list) -> Any | None:
    """Word-level union of same-config filters, or None when not mergeable."""
    entry = registered_kind(kind)
    if entry.merge is None:
        return None
    return entry.merge(list(filters))


def filter_from_bytes(data: bytes):
    """Rehydrate any serialized filter, dispatching on its frame kind."""
    kind = peek_kind(data)
    entry = _SERIAL_LOADERS.get(kind)
    if entry is None:
        name = KIND_NAMES.get(kind)
        detail = f"{name!r} has no registered loader" if name else "unregistered"
        raise SerialError(
            f"unknown serialization kind (kind byte {kind}: {detail})"
        )
    return entry.from_bytes(data)


# ----------------------------------------------------------------------
# the "none" filter (fence pointers only: every probe answers "maybe")
# ----------------------------------------------------------------------
class NullFilter:
    """The ``"none"`` kind: zero bits, every probe a sound "maybe".

    Gives the no-filter baseline (fence pointers only, the paper's Fig. 9
    floor) the same protocol surface as every real filter, including a
    serialized form, so spec-driven stores can disable filtering without a
    special case.
    """

    size_bits = 0

    def __init__(self, n_keys: int | None = None) -> None:
        self._num_keys = 0

    def __len__(self) -> int:
        return self._num_keys

    def insert(self, key: int) -> None:
        self._num_keys += 1

    def insert_many(self, keys: np.ndarray) -> None:
        self._num_keys += int(np.asarray(keys).size)  # repro-lint: ignore[dtype-discipline] -- size only; the key values are never read

    def contains_point(self, key: int) -> bool:
        return True

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(keys).size, dtype=bool)  # repro-lint: ignore[dtype-discipline] -- size only; the key values are never read

    def contains_range(self, l_key: int, r_key: int) -> bool:
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        return True

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        return np.ones(check_bounds_rows(bounds).shape[0], dtype=bool)

    def to_bytes(self) -> bytes:
        return pack_frame(KIND_NONE, {"num_keys": self._num_keys})

    @classmethod
    def from_bytes(cls, data: bytes) -> "NullFilter":
        header, payloads = unpack_frame(data, expect_kind=KIND_NONE)
        if payloads:
            raise SerialError(
                f"none frame carries {len(payloads)} payloads, expected 0"
            )
        filt = cls()
        filt._num_keys = int(header.get("num_keys", 0))
        return filt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NullFilter(keys={self._num_keys})"


# ----------------------------------------------------------------------
# built-in kind factories and merge rules
# ----------------------------------------------------------------------
def _build_bloomrf(
    n_keys: int,
    bits_per_key: float = 16.0,
    max_range: int = 1 << 40,
    domain_bits: int = 64,
    point_weight: float = 4.0,
    seed: int = 0x5EED,
) -> BloomRF:
    return BloomRF.tuned(
        n_keys=n_keys,
        bits_per_key=bits_per_key,
        max_range=max_range,
        domain_bits=domain_bits,
        point_weight=point_weight,
        seed=seed,
    )


def _build_bloomrf_basic(
    n_keys: int,
    bits_per_key: float = 16.0,
    domain_bits: int = 64,
    delta: int = 7,
    seed: int = 0x5EED,
) -> BloomRF:
    return BloomRF.basic(
        n_keys=n_keys,
        bits_per_key=bits_per_key,
        domain_bits=domain_bits,
        delta=delta,
        seed=seed,
    )


def _build_bloom(
    n_keys: int,
    bits_per_key: float = 16.0,
    style: str = "rocksdb",
    num_hashes: int | None = None,
    seed: int = 0xB10F,
) -> BloomFilter:
    return BloomFilter(
        n_keys=n_keys,
        bits_per_key=bits_per_key,
        style=style,
        num_hashes=num_hashes,
        seed=seed,
    )


def _build_prefix_bloom(
    n_keys: int,
    bits_per_key: float = 16.0,
    expected_range: int = 1 << 16,
    domain_bits: int = 64,
    seed: int = 0x9F1,
) -> PrefixBloomFilter:
    return PrefixBloomFilter.for_range(
        n_keys=n_keys,
        bits_per_key=bits_per_key,
        expected_range=expected_range,
        domain_bits=domain_bits,
        seed=seed,
    )


def _build_rosetta(
    n_keys: int,
    bits_per_key: float = 16.0,
    max_range: int = 1 << 16,
    domain_bits: int = 64,
    seed: int = 0x0E77A,
) -> Rosetta:
    return Rosetta.tuned(
        n_keys=n_keys,
        bits_per_key=bits_per_key,
        max_range=max_range,
        domain_bits=domain_bits,
        seed=seed,
    )


def _build_surf(
    n_keys: int | None = None,
    bits_per_key: float | None = None,
    suffix_mode: str = "real",
    suffix_bits: int = 8,
    dense_ratio: int = 64,
    seed: int = 0x50F1,
) -> SurfFilter:
    # SuRF is static: the facade buffers inserts and builds the trie from
    # the actual key set, so the expected count is irrelevant for sizing.
    return SurfFilter(
        bits_per_key=bits_per_key,
        suffix_mode=suffix_mode,
        suffix_bits=suffix_bits,
        dense_ratio=dense_ratio,
        seed=seed,
    )


def _build_cuckoo(
    n_keys: int,
    fingerprint_bits: int = 12,
    load_factor: float = 0.95,
    seed: int = 0xC0C0,
) -> CuckooFilter:
    return CuckooFilter(
        n_keys=n_keys,
        fingerprint_bits=fingerprint_bits,
        load_factor=load_factor,
        seed=seed,
    )


def _build_none(n_keys: int | None = None) -> NullFilter:
    return NullFilter()


def _merge_bloomrf(filters: list) -> BloomRF | None:
    """Same-config bloomRF word union (see ``BloomRF.union_into``)."""
    if not filters or any(not isinstance(f, BloomRF) for f in filters):
        return None
    if any(f.config != filters[0].config for f in filters[1:]):
        return None
    return BloomRF.merge(filters)


def _merge_bloom(filters: list) -> BloomFilter | None:
    """Same-geometry Bloom word union (see ``BloomFilter.union_into``)."""
    if not filters or any(not isinstance(f, BloomFilter) for f in filters):
        return None
    head = filters[0]
    if any(
        (f.num_bits, f.num_hashes, f.seed)
        != (head.num_bits, head.num_hashes, head.seed)
        for f in filters[1:]
    ):
        return None
    merged = BloomFilter(
        n_keys=1,
        bits_per_key=head.num_bits,
        num_hashes=head.num_hashes,
        seed=head.seed,
    )
    assert merged.num_bits == head.num_bits  # round_up(m, 64) is idempotent
    for f in filters:
        f.union_into(merged)
    return merged


register_filter(
    "bloomrf",
    _build_bloomrf,
    serial_kind=KIND_BLOOMRF,
    from_bytes=BloomRF.from_bytes,
    merge=_merge_bloomrf,
    description="advisor-tuned bloomRF point-range filter (Sect. 7)",
)
register_filter(
    "bloomrf-basic",
    _build_bloomrf_basic,
    # Basic filters serialize as ordinary bloomRF frames; the "bloomrf"
    # entry owns the KIND_BLOOMRF loader.
    merge=_merge_bloomrf,
    description="tuning-free basic bloomRF (Sect. 3-5)",
)
register_filter(
    "bloom",
    _build_bloom,
    serial_kind=KIND_BLOOM,
    from_bytes=BloomFilter.from_bytes,
    merge=_merge_bloom,
    description="standard Bloom filter (point probes only)",
)
register_filter(
    "prefix-bloom",
    _build_prefix_bloom,
    serial_kind=KIND_PREFIX_BLOOM,
    from_bytes=PrefixBloomFilter.from_bytes,
    description="Bloom filter over fixed-length key prefixes (Fig. 9.D)",
)
register_filter(
    "rosetta",
    _build_rosetta,
    serial_kind=KIND_ROSETTA,
    from_bytes=Rosetta.from_bytes,
    description="hierarchical per-level Bloom filters with doubting",
)
register_filter(
    "surf",
    _build_surf,
    serial_kind=KIND_SURF,
    from_bytes=SuRF.from_bytes,
    description="fast succinct trie range filter (static; buffered facade)",
)
register_filter(
    "cuckoo",
    _build_cuckoo,
    serial_kind=KIND_CUCKOO,
    from_bytes=CuckooFilter.from_bytes,
    description="cuckoo filter (point probes, deletable)",
)
register_filter(
    "none",
    _build_none,
    serial_kind=KIND_NONE,
    from_bytes=NullFilter.from_bytes,
    description="no filter: fence pointers only, every probe answers maybe",
)
register_filter(
    "sharded-bloomrf",
    None,  # built via ShardedBloomRF.from_spec, not from a bare spec
    serial_kind=KIND_SHARDED_BLOOMRF,
    from_bytes=ShardedBloomRF.from_bytes,
    description="keyspace-partitioned bloomRF shard set (load-only kind)",
)


# ----------------------------------------------------------------------
# the standard parameter mapping (one place instead of three dispatch tables)
# ----------------------------------------------------------------------
def standard_spec(
    kind: str,
    *,
    bits_per_key: float = 16.0,
    max_range: int = 1 << 20,
    seed: int | None = None,
) -> FilterSpec:
    """Map the shared benchmark knobs onto a kind's native parameters.

    Every sweep in the paper varies the same two knobs — the space budget
    (bits/key) and the largest expected range — whatever the filter.  This
    is the single place that translation lives: the CLI, the bench
    harness, and :func:`~repro.lsm.filter_policy.policy_by_name` all call
    it, so adding a kind here makes it measurable everywhere at once.
    """
    registered_kind(kind)  # fail fast with the known-kinds list
    if kind in ("bloomrf",):
        params: dict[str, Any] = {
            "bits_per_key": bits_per_key, "max_range": int(max_range),
        }
    elif kind in ("bloomrf-basic", "bloom", "surf"):
        params = {"bits_per_key": bits_per_key}
    elif kind == "prefix-bloom":
        params = {
            "bits_per_key": bits_per_key, "expected_range": int(max_range),
        }
    elif kind == "rosetta":
        params = {
            "bits_per_key": bits_per_key, "max_range": int(max_range),
        }
    elif kind == "cuckoo":
        # The paper's Fig. 12.E sizing: spend ~95% of the budget on the
        # fingerprint at the 95% target occupancy.
        params = {
            "fingerprint_bits": max(2, min(32, int(bits_per_key * 0.95 / 1.05)))
        }
    elif kind == "none":
        return FilterSpec(kind)  # takes no parameters (not even a seed)
    else:
        raise ValueError(f"no standard parameter mapping for kind {kind!r}")
    if seed is not None:
        params["seed"] = int(seed)
    return FilterSpec(kind, params)


# ----------------------------------------------------------------------
# the store facade
# ----------------------------------------------------------------------
def open_store(
    path: str | None = None,
    *,
    filter: "FilterSpec | Any | None" = None,
    shards: int = 1,
    partition: str = "hash",
    memtable_capacity: int = 1 << 16,
    value_bytes: int = 512,
    block_bytes: int = 4096,
    device=None,
    store_values: bool = False,
    max_workers: int | None = None,
    domain_bits: int = 64,
    wal_sync: str = "batch",
    wal_group_commit: int = 1024,
    compaction: "str | dict | Any | None" = "manual",
    compression: "str | dict | None" = None,
    mmap: bool = False,
    block_cache_bytes: int | None = None,
) -> Store:
    """Open a key-value store behind the one :class:`Store` interface.

    ``shards=1`` returns an :class:`~repro.lsm.db.LsmDB`; ``shards>1``
    returns a :class:`~repro.lsm.sharded.ShardedLsmDB` partitioned by
    ``partition`` (``"hash"`` or ``"range"``).  ``filter`` selects the
    per-SST filter blocks: a :class:`FilterSpec` (the normal path), an
    existing policy object, or None for fence pointers only.  For
    ``shards>1`` a sequence of specs/policies (one per shard) enables
    per-shard filter sizing.  Answers and IOStats are identical to
    constructing the engines directly (asserted by the bench guard).

    With ``path`` the store is **persistent** (:mod:`repro.lsm.store`):
    a directory of :mod:`repro.serial` frames — a versioned store
    manifest plus per-run SST and filter-block files (per shard when
    ``shards>1``).  A path holding an existing store is *reopened* with
    its persisted spec/shards/geometry — runs are reconstructed and
    filter blocks deserialized (never rebuilt), so probe answers match
    the never-closed store bit for bit; explicit arguments that conflict
    with the persisted configuration raise :class:`ValueError`, and any
    corruption raises :class:`~repro.serial.SerialError` naming the
    offending file.  ``flush()``/``close()`` (or the context manager)
    make all writes durable; on-disk stores require a spec-driven
    ``filter`` (a :class:`FilterSpec`, a
    :class:`~repro.lsm.filter_policy.SpecPolicy`, or None).

    Persistent stores write every ``put``/``delete`` to a per-directory
    (per-shard) write-ahead log before the memtable mutates, so
    acknowledged writes survive ``kill -9`` and are replayed on reopen.
    ``wal_sync`` picks the fsync policy — ``"always"`` (every write call),
    ``"batch"`` (group commit: one fsync per ``wal_group_commit`` logged
    operations), or ``"off"`` (no fsync until flush; still
    process-death-safe, power-loss window unbounded) — and is pinned in
    the manifest; ``wal_group_commit`` is a runtime knob.  Both are
    ignored by in-memory stores, which keep no log.

    ``compaction`` selects the background merge policy
    (:mod:`repro.lsm.compaction`): ``"manual"`` (the default — merges run
    only via explicit :meth:`Store.compact`), ``"size-tiered"``, or
    ``"leveled"``, with a dict form (``{"policy": ..., "params": {...}}``
    or flat knobs like ``{"policy": "size-tiered", "min_runs": 6}``) or a
    policy instance for tuned triggers.  Background policies run merges
    on worker threads after each flush; reads stay answer-identical to a
    manual store, and persistent stores pin the policy in the manifest.

    ``compression`` turns on per-block compression of SST payloads in a
    persistent store: ``"zlib"`` (stdlib), ``"zstd"`` (needs the optional
    ``repro[zstd]`` extra), or a dict ``{"codec": ..., "block_bytes": ...}``
    to tune the block size.  The codec and block size are pinned in the
    manifest, so a reopen needs no arguments (and conflicting ones raise).
    ``mmap=True`` switches reopen onto the zero-copy read tier: SST and
    filter frames are memory-mapped and payloads become array views, so
    reopening costs O(runs) instead of O(bytes).  ``block_cache_bytes``
    sizes the decompressed-block LRU cache shared by all shards (compressed
    stores only).  All three are rejected for in-memory stores.
    """
    if wal_sync not in ("always", "batch", "off"):
        raise ValueError(
            f"wal_sync must be 'always', 'batch', or 'off', got {wal_sync!r}"
        )
    if wal_group_commit < 1:
        raise ValueError(
            f"wal_group_commit must be >= 1, got {wal_group_commit}"
        )
    from repro.lsm.compaction import coerce_compaction

    compaction_policy = coerce_compaction(compaction)  # fail fast on typos
    if path is not None:
        from repro.lsm.store import open_persistent_store

        return open_persistent_store(
            path,
            filter=filter,
            shards=shards,
            partition=partition,
            memtable_capacity=memtable_capacity,
            value_bytes=value_bytes,
            block_bytes=block_bytes,
            device=device,
            store_values=store_values,
            max_workers=max_workers,
            domain_bits=domain_bits,
            wal_sync=wal_sync,
            wal_group_commit=wal_group_commit,
            compaction=compaction_policy,
            compression=compression,
            mmap=mmap,
            block_cache_bytes=block_cache_bytes,
        )
    if compression is not None or mmap or block_cache_bytes is not None:
        raise ValueError(
            "compression, mmap, and block_cache_bytes are disk read-tier "
            "options and require a persistent store (pass path=...)"
        )
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    from repro.lsm.db import LsmDB
    from repro.lsm.sharded import ShardedLsmDB

    if shards == 1:
        if isinstance(filter, (list, tuple)):
            raise ValueError("per-shard filter specs require shards > 1")
        return LsmDB(
            policy=filter,
            memtable_capacity=memtable_capacity,
            value_bytes=value_bytes,
            block_bytes=block_bytes,
            device=device,
            store_values=store_values,
            compaction=compaction_policy,
        )
    return ShardedLsmDB(
        policy=filter,
        num_shards=shards,
        partition=partition,
        memtable_capacity=memtable_capacity,
        value_bytes=value_bytes,
        block_bytes=block_bytes,
        device=device,
        store_values=store_values,
        max_workers=max_workers,
        domain_bits=domain_bits,
        compaction=compaction_policy,
    )
