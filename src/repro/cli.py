"""Command-line interface: tune, model, measure and inspect bloomRF filters.

Usage (also available as ``python -m repro``)::

    python -m repro tune --keys 50000000 --bits-per-key 14 --max-range 16384
    python -m repro model --keys 1000000 --bits-per-key 16 --max-range 1e9
    python -m repro measure --keys 100000 --bits-per-key 18 --range-size 1e6 \
        --distribution normal --filter bloomrf
    python -m repro inspect filter.bin
    python -m repro store init db/ --filter bloomrf --shards 4
    python -m repro store ingest db/ keys.txt
    python -m repro store query db/ --point 42 --range 100 200
    python -m repro store compact db/ --policy size-tiered
    python -m repro store inspect db/
    python -m repro store recover db/
    python -m repro lint src/repro

``tune`` prints the advisor's chosen configuration and its analytic FPR
estimates; ``model`` prints the full per-level FPR profile; ``measure``
builds a filter over synthetic keys and measures FPR on guaranteed-empty
queries; ``inspect`` summarizes a serialized filter file; ``store``
creates, loads, queries, and summarizes persistent on-disk stores
(:mod:`repro.lsm.store`); ``lint`` runs the AST invariant linter
(:mod:`repro.analysis`) that machine-checks the store's safety contracts.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _int_ish(text: str) -> int:
    """Accept plain ints and scientific notation like ``1e9``."""
    return int(float(text))


def _key_arg(text: str) -> int:
    """An exact integer key: the float round-trip of :func:`_int_ish` would
    silently corrupt keys above 2**53, so integer literals parse exactly
    (scientific notation still accepted for round workload-style values)."""
    try:
        return int(text)
    except ValueError:
        return int(float(text))


def _read_keyfile(path: str):
    """Keys from a text file (one integer per line) as a uint64 array."""
    from pathlib import Path

    import numpy as np

    lines = Path(path).read_text().split()
    return np.array([int(line) for line in lines], dtype=np.uint64)


def _run_count(db) -> int:
    """Total runs of either engine (sharded or not)."""
    count = getattr(db, "num_sstables", None)
    return len(db.sstables) if count is None else count


def build_parser() -> argparse.ArgumentParser:
    from repro.api import available_kinds

    kinds = available_kinds()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="bloomRF point-range filter toolkit (EDBT 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser("tune", help="run the tuning advisor (Sect. 7)")
    tune.add_argument("--keys", type=_int_ish, required=True)
    tune.add_argument("--bits-per-key", type=float, required=True)
    tune.add_argument("--max-range", type=_int_ish, required=True)
    tune.add_argument("--domain-bits", type=int, default=64)
    tune.add_argument("--point-weight", type=float, default=4.0)

    model = sub.add_parser("model", help="print the per-level FPR profile")
    model.add_argument("--keys", type=_int_ish, required=True)
    model.add_argument("--bits-per-key", type=float, required=True)
    model.add_argument("--max-range", type=_int_ish, required=True)
    model.add_argument("--domain-bits", type=int, default=64)

    measure = sub.add_parser("measure", help="measure FPR on synthetic data")
    measure.add_argument("--keys", type=_int_ish, default=100_000)
    measure.add_argument("--bits-per-key", type=float, default=16)
    measure.add_argument("--range-size", type=_int_ish, default=1 << 16)
    measure.add_argument("--queries", type=_int_ish, default=2_000)
    measure.add_argument(
        "--distribution", choices=("uniform", "normal", "zipfian"), default="uniform"
    )
    measure.add_argument(
        "--workload", choices=("uniform", "normal", "zipfian"), default="uniform"
    )
    measure.add_argument("--filter", choices=kinds, default="bloomrf")
    measure.add_argument("--seed", type=int, default=7)

    inspect = sub.add_parser("inspect", help="summarize a serialized filter")
    inspect.add_argument("path")

    save = sub.add_parser("build", help="build a filter over a key file")
    save.add_argument("keyfile", help="text file, one integer key per line")
    save.add_argument("output", help="where to write the serialized filter")
    save.add_argument("--bits-per-key", type=float, default=16)
    save.add_argument("--max-range", type=_int_ish, default=1 << 20)
    save.add_argument(
        "--filter", choices=kinds, default="bloomrf",
        help="which registered filter kind to build (default: bloomrf)",
    )
    save.add_argument(
        "--shards", type=int, default=1,
        help="shard the filter over N partitions (bloomrf only; writes one "
        "blob holding every shard — merge-compatible with the unsharded "
        "filter)",
    )
    save.add_argument(
        "--partition", choices=("hash", "range"), default="hash",
        help="shard dispatch scheme when --shards > 1",
    )

    store = sub.add_parser(
        "store", help="create, load, query, and inspect on-disk stores"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    s_init = store_sub.add_parser(
        "init", help="initialize a fresh on-disk store directory"
    )
    s_init.add_argument("path", help="store directory (created if missing)")
    s_init.add_argument(
        "--filter", choices=kinds, default="bloomrf",
        help="filter kind backing every SST filter block",
    )
    s_init.add_argument("--bits-per-key", type=float, default=16)
    s_init.add_argument("--max-range", type=_int_ish, default=1 << 20)
    s_init.add_argument(
        "--shards", type=int, default=1,
        help="partition the store over N per-shard sub-stores",
    )
    s_init.add_argument(
        "--partition", choices=("hash", "range"), default="hash",
        help="shard dispatch scheme when --shards > 1",
    )
    s_init.add_argument("--memtable-capacity", type=_int_ish, default=1 << 16)
    s_init.add_argument(
        "--store-values", action="store_true",
        help="persist values alongside keys (default: key-only mode)",
    )
    s_init.add_argument(
        "--wal-sync", choices=("always", "batch", "off"), default="batch",
        help="write-ahead-log fsync policy, persisted with the store "
        "(always: fsync per write call; batch: group commit; off: no "
        "fsync — kill -9 durability depends on the kernel)",
    )
    s_init.add_argument(
        "--compaction", choices=("manual", "size-tiered", "leveled"),
        default="manual",
        help="background compaction policy, persisted with the store "
        "(manual: foreground `store compact` only; size-tiered/leveled: "
        "merges run on a background worker whenever the run layout trips "
        "the policy)",
    )
    s_init.add_argument(
        "--compression", choices=("zlib", "zstd"), default=None,
        help="per-block SST compression codec, persisted with the store "
        "(zstd needs the `zstd` extra installed; default: uncompressed)",
    )
    s_init.add_argument(
        "--block-bytes", type=_int_ish, default=None,
        help="raw bytes per compressed block (only with --compression; "
        "default 64 KiB)",
    )

    s_ingest = store_sub.add_parser(
        "ingest", help="bulk-load keys from a file into an existing store"
    )
    s_ingest.add_argument("path", help="store directory")
    s_ingest.add_argument("keyfile", help="text file, one integer key per line")

    s_query = store_sub.add_parser(
        "query", help="point lookups / range-emptiness probes against a store"
    )
    s_query.add_argument("path", help="store directory")
    s_query.add_argument(
        "--point", type=_key_arg, nargs="+", default=None,
        help="keys to look up exactly",
    )
    s_query.add_argument(
        "--range", type=_key_arg, nargs=2, metavar=("LO", "HI"),
        dest="range_bounds", default=None,
        help="inclusive range to test for any live key",
    )

    s_compact = store_sub.add_parser(
        "compact",
        help="merge runs in the foreground: a full merge or one policy pass",
    )
    s_compact.add_argument("path", help="store directory")
    s_compact.add_argument(
        "--policy", choices=("full", "stored", "size-tiered", "leveled"),
        default="full",
        help="full: merge every run into one (default); stored: run the "
        "store's persisted policy until quiescent; size-tiered/leveled: "
        "run that policy with default knobs for this pass only (the "
        "store's persisted policy is not changed)",
    )

    s_inspect = store_sub.add_parser(
        "inspect", help="summarize a store directory (manifest + runs)"
    )
    s_inspect.add_argument("path", help="store directory")

    s_recover = store_sub.add_parser(
        "recover",
        help="replay the write-ahead log after a crash and flush the "
        "recovered writes into durable runs",
    )
    s_recover.add_argument("path", help="store directory")

    s_bench_server = store_sub.add_parser(
        "bench-server",
        help="many-client serving benchmark: coalesced vs per-request "
        "dispatch over fresh stores created under PATH; prints JSON",
    )
    s_bench_server.add_argument(
        "path", help="working directory (fresh stores are created inside)"
    )
    s_bench_server.add_argument(
        "--clients", type=int, default=8,
        help="concurrent asyncio clients per mode",
    )
    s_bench_server.add_argument(
        "--requests", type=int, default=50,
        help="requests per client per mode",
    )
    s_bench_server.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="serve a store over TCP (length-prefixed JSON frames) with "
        "request coalescing; SIGINT/SIGTERM drains in-flight requests, "
        "flushes, and exits",
    )
    serve.add_argument("path", help="store directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8474, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--uncoalesced", action="store_true",
        help="per-request dispatch: no batching, one ack barrier per write",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="per-connection in-flight request cap (backpressure)",
    )

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant linter over Python sources "
        "(zero unsuppressed findings = exit 0)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package source)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its summary and exit",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings with their reasons",
    )

    return parser


def _cmd_tune(args) -> int:
    from repro.core.advisor import TuningAdvisor

    advisor = TuningAdvisor(
        domain_bits=args.domain_bits, point_weight=args.point_weight
    )
    report = advisor.configure(
        n_keys=args.keys,
        total_bits=int(args.keys * args.bits_per_key),
        max_range=args.max_range,
        return_report=True,
    )
    best = report.best
    print(best.config.describe())
    print(f"total size: {best.config.total_bits} bits "
          f"({best.config.bits_per_key(args.keys):.2f} bits/key)")
    print(f"estimated point FPR: {best.point_fpr:.6f}")
    print(f"estimated range FPR (R <= {args.max_range}): {best.range_fpr:.6f}")
    print(f"candidates examined: {len(report.candidates)} "
          f"(exact levels {sorted({c.exact_level for c in report.candidates})})")
    return 0


def _cmd_model(args) -> int:
    from repro.core.advisor import TuningAdvisor
    from repro.core.model import extended_fpr_profile

    advisor = TuningAdvisor(domain_bits=args.domain_bits)
    config = advisor.configure(
        n_keys=args.keys,
        total_bits=int(args.keys * args.bits_per_key),
        max_range=args.max_range,
    )
    print(config.describe())
    profile = extended_fpr_profile(config, args.keys)
    for level in range(args.domain_bits, -1, -1):
        bar = "#" * int(profile.fpr[level] * 50)
        print(f"level {level:2d}  fpr {profile.fpr[level]:9.6f}  {bar}")
    return 0


def _cmd_measure(args) -> int:
    from repro.bench.harness import (
        build_standalone_filter,
        measure_point_fpr,
        measure_range_fpr,
    )
    from repro.workloads import (
        distribution_by_name,
        empty_point_queries,
        empty_range_queries,
    )

    keys = distribution_by_name(args.distribution)(args.keys, seed=args.seed)
    fut = build_standalone_filter(
        args.filter, keys, bits_per_key=args.bits_per_key,
        max_range=max(args.range_size, 2), seed=args.seed,
    )
    print(f"filter: {args.filter}  size: {fut.size_bits} bits "
          f"({fut.bits_per_key(args.keys):.2f} bits/key)  "
          f"build: {fut.build_time_s * 1e3:.1f} ms")
    if args.range_size <= 1:
        probes = empty_point_queries(keys, args.queries, workload=args.workload)
        result = measure_point_fpr(fut, probes)
        kind = "point"
    else:
        queries = empty_range_queries(
            keys, args.queries, range_size=args.range_size, workload=args.workload
        )
        result = measure_range_fpr(fut, queries)
        kind = f"range({args.range_size})"
    print(f"{kind} FPR over {result.queries} empty queries: {result.fpr:.5f}")
    print(f"probe throughput: {result.queries_per_second:,.0f} queries/s")
    return 0


def _cmd_inspect(args) -> int:
    """Summarize any serialized filter, dispatching on the frame's kind.

    Loading goes through the :mod:`repro.api` registry, so every
    registered kind — bloomRF, every baseline, sharded sets — inspects
    through this one command.  The frame is memory-mapped rather than
    read into memory: the header is validated up front and the filter
    reconstructs over zero-copy payload views, so only the pages the
    summary actually touches fault in.
    """
    from pathlib import Path

    from repro import serial
    from repro.baselines.bloom import BloomFilter
    from repro.core.bloomrf import BloomRF
    from repro.shard import ShardedBloomRF

    path = Path(args.path)
    try:
        frame = serial.map_frame(path)
        filt = serial.load_filter(frame.view)
    except ValueError as exc:
        print(f"cannot inspect {args.path}: {exc}")
        return 2
    kind = serial.KIND_NAMES[frame.kind]
    print(f"kind: {kind} (format v{frame.version}, "
          f"{path.stat().st_size / 1024:.1f} KiB on disk)")
    if isinstance(filt, BloomRF):
        print(filt.config.describe())
        print(f"keys inserted: {filt.num_keys}")
        print(f"size: {filt.size_bits} bits ({filt.size_bits / 8 / 1024:.1f} KiB)")
        print(f"PMHF fill ratio: {filt.fill_ratio():.4f}")
    elif isinstance(filt, BloomFilter):
        print(f"BloomFilter(bits={filt.num_bits}, k={filt.num_hashes}, "
              f"seed={filt.seed:#x})")
        print(f"keys inserted: {len(filt)}")
        print(f"fill ratio: {filt.fill_ratio():.4f}")
    elif isinstance(filt, ShardedBloomRF):
        with filt:
            print(filt.config.describe())
            print(f"shards: {filt.num_shards} ({filt.partition} partition)")
            print(f"keys inserted: {filt.num_keys} "
                  f"(per shard: {[s.num_keys for s in filt.shards]})")
            print(f"size: {filt.size_bits} bits "
                  f"({filt.size_bits / 8 / 1024:.1f} KiB across shards)")
            print(f"merged fill ratio: {filt.merge().fill_ratio():.4f}")
    else:  # any other registered kind: generic summary
        print(repr(filt))
        if hasattr(filt, "__len__"):
            print(f"keys inserted: {len(filt)}")
        print(f"size: {filt.size_bits} bits "
              f"({filt.size_bits / 8 / 1024:.1f} KiB)")
    return 0


def _cmd_build(args) -> int:
    from pathlib import Path

    from repro.api import make_filter, standard_spec
    from repro.shard import ShardedBloomRF

    if args.shards < 1:
        print("--shards must be >= 1")
        return 2
    if args.filter != "bloomrf" and args.shards > 1:
        print("--shards applies to the bloomrf filter only")
        return 2
    keys = _read_keyfile(args.keyfile)
    spec = standard_spec(
        args.filter, bits_per_key=args.bits_per_key, max_range=args.max_range
    )
    if args.shards > 1:
        filt = ShardedBloomRF.from_spec(
            spec,
            num_shards=args.shards,
            partition=args.partition,
            n_keys=max(int(keys.size), 1),
        )
        filt.insert_many(keys)
        filt.close()
        described = (
            f"{filt.config.describe()} x {args.shards} "
            f"{args.partition}-partitioned shards"
        )
    else:
        filt = make_filter(spec, n_keys=max(int(keys.size), 1))
        filt.insert_many(keys)
        try:
            filt.size_bits  # force lazy builders (SuRF) before describing
        except ValueError as exc:
            print(f"cannot build a {args.filter} filter: {exc}")
            return 2
        config = getattr(filt, "config", None)
        described = config.describe() if config is not None else repr(filt)
    try:
        blob = filt.to_bytes()
    except ValueError as exc:  # e.g. an empty SuRF has no trie to persist
        print(f"cannot serialize the built {args.filter} filter: {exc}")
        return 2
    Path(args.output).write_bytes(blob)
    print(f"built {described}")
    print(f"wrote {args.output} ({filt.size_bits / 8 / 1024:.1f} KiB, "
          f"{keys.size} keys)")
    return 0


def _cmd_store(args) -> int:
    return _STORE_COMMANDS[args.store_command](args)


def _cmd_store_init(args) -> int:
    from pathlib import Path

    from repro.api import open_store, standard_spec
    from repro.lsm.store import MANIFEST_NAME

    if args.shards < 1:
        print("--shards must be >= 1")
        return 2
    if (Path(args.path) / MANIFEST_NAME).is_file():
        print(f"{args.path} already holds a store; refusing to re-initialize")
        return 2
    if args.block_bytes is not None and args.compression is None:
        print("--block-bytes requires --compression")
        return 2
    spec = standard_spec(
        args.filter, bits_per_key=args.bits_per_key, max_range=args.max_range
    )
    compression = args.compression
    if compression is not None and args.block_bytes is not None:
        compression = {"codec": compression, "block_bytes": args.block_bytes}
    try:
        with open_store(
            path=args.path,
            filter=spec,
            shards=args.shards,
            partition=args.partition,
            memtable_capacity=args.memtable_capacity,
            store_values=args.store_values,
            wal_sync=args.wal_sync,
            compaction=args.compaction,
            compression=compression,
        ):
            pass
    except ValueError as exc:  # e.g. --compression zstd without the extra
        print(f"cannot initialize {args.path}: {exc}")
        return 2
    sharding = (
        f"{args.shards} {args.partition}-partitioned shards"
        if args.shards > 1
        else "unsharded"
    )
    codec = (
        "uncompressed"
        if args.compression is None
        else f"{args.compression}-compressed"
    )
    print(f"initialized {args.path}: {spec!r}, {sharding}, "
          f"{args.compaction} compaction, {codec}")
    return 0


def _cmd_store_ingest(args) -> int:
    from pathlib import Path

    from repro.api import open_store
    from repro.lsm.store import MANIFEST_NAME
    from repro.serial import SerialError

    keys = _read_keyfile(args.keyfile)
    if not (Path(args.path) / MANIFEST_NAME).is_file():
        print(f"{args.path} holds no store; run `repro store init` first")
        return 2
    try:
        with open_store(path=args.path) as db:
            db.put_many(keys)
            db.flush()
            total = db.num_keys
            runs = _run_count(db)
    except SerialError as exc:
        print(f"cannot open store {args.path}: {exc}")
        return 2
    print(f"ingested {keys.size} keys into {args.path} "
          f"({total} keys live across {runs} runs)")
    return 0


def _cmd_store_query(args) -> int:
    from pathlib import Path

    import numpy as np

    from repro.api import open_store
    from repro.lsm.store import MANIFEST_NAME
    from repro.serial import SerialError

    if args.point is None and args.range_bounds is None:
        print("nothing to query: pass --point and/or --range")
        return 2
    if not (Path(args.path) / MANIFEST_NAME).is_file():
        print(f"{args.path} holds no store; run `repro store init` first")
        return 2
    try:
        # Arguments become uint64 arrays before the store is touched, so
        # out-of-domain keys fail as "bad query", never as a store error.
        points = (
            np.array(args.point, dtype=np.uint64)
            if args.point is not None
            else None
        )
        bounds = (
            np.array([args.range_bounds], dtype=np.uint64)
            if args.range_bounds is not None
            else None
        )
    except (ValueError, OverflowError) as exc:
        print(f"bad query: {exc}")
        return 2
    try:
        with open_store(path=args.path) as db:
            if points is not None:
                present = db.get_many(points)
                for key, hit in zip(points.tolist(), present.tolist(), strict=True):
                    print(f"point {key}: {'present' if hit else 'absent'}")
            if bounds is not None:
                lo, hi = args.range_bounds
                hit = bool(db.scan_nonempty_many(bounds)[0])
                print(f"range [{lo}, {hi}]: "
                      f"{'non-empty' if hit else 'empty'}")
            stats = db.stats
            print(f"filter probes: {stats.filter_probes} "
                  f"(positives {stats.filter_positives}, "
                  f"false positives {stats.filter_false_positives}), "
                  f"blocks read: {stats.blocks_read}")
    except SerialError as exc:
        print(f"cannot open store {args.path}: {exc}")
        return 2
    except (ValueError, OverflowError) as exc:
        print(f"bad query: {exc}")
        return 2
    return 0


def _cmd_store_compact(args) -> int:
    """Foreground compaction over an existing store.

    ``--policy full`` merges every run into one; the other choices run
    :meth:`maybe_compact` passes until the policy reports quiescence.
    One-shot policies go in as an *argument* (never assigned to the
    engine), so the store's persisted policy is untouched.
    """
    from pathlib import Path

    from repro.api import open_store
    from repro.lsm.compaction import COMPACTION_POLICIES
    from repro.lsm.store import MANIFEST_NAME
    from repro.serial import SerialError

    if not (Path(args.path) / MANIFEST_NAME).is_file():
        print(f"{args.path} holds no store; run `repro store init` first")
        return 2
    try:
        with open_store(path=args.path) as db:
            before = _run_count(db)
            merges = 0
            if args.policy == "full":
                db.compact()
                merges = 1 if before > 1 else 0
            else:
                override = (
                    None  # maybe_compact falls back to the stored policy
                    if args.policy == "stored"
                    else COMPACTION_POLICIES[args.policy]()
                )
                if args.policy == "stored" and db.compaction is None:
                    print("stored policy is manual; nothing to run "
                          "(use --policy full or name a policy)")
                    return 0
                for engine in getattr(db, "shards", None) or [db]:
                    while engine.maybe_compact(override) is not None:
                        merges += 1
            after = _run_count(db)
    except SerialError as exc:
        print(f"cannot open store {args.path}: {exc}")
        return 2
    print(f"compacted {args.path} ({args.policy}): "
          f"{before} -> {after} runs, {merges} merge(s)")
    return 0


def _cmd_store_inspect(args) -> int:
    """Summarize a store from its manifests, frame headers, and log stream.

    Nothing here opens the store or reads a run payload: the manifests
    give the run layout, each filter frame is memory-mapped (only its
    header pages fault in), and the write-ahead logs are scanned record
    by record — so inspecting a multi-GB store is O(runs) metadata work.
    """
    from pathlib import Path

    from repro.api import FilterSpec
    from repro.lsm.compaction import (
        SizeTieredPolicy,
        coerce_compaction,
        compaction_to_dict,
    )
    from repro.lsm.filter_policy import handle_from_bytes
    from repro.lsm.store import (
        _FILTER_SUFFIX,
        _manifest_field,
        _shard_dir_name,
        read_store_manifest,
    )
    from repro.lsm.wal import WAL_NAME, read_wal
    from repro.serial import FORMAT_VERSION, SerialError, map_frame

    root = Path(args.path)
    try:
        manifest = read_store_manifest(root)
        engine = manifest["engine"]
        print(f"engine: {engine} (store format v{FORMAT_VERSION})")
        if engine == "sharded-lsm":
            where = root
            specs = [
                FilterSpec.from_dict(d)
                for d in _manifest_field(manifest, "specs", where)
            ]
            print(f"shards: {manifest['num_shards']} "
                  f"({manifest['partition']} partition)")
            if len({spec.to_json() for spec in specs}) == 1:
                print(f"filter: {specs[0]!r}")
            else:
                for i, spec in enumerate(specs):
                    print(f"filter[shard {i}]: {spec!r}")
            shard_dirs = [
                root / _shard_dir_name(i)
                for i in range(int(manifest["num_shards"]))
            ]
            shard_manifests = [read_store_manifest(d) for d in shard_dirs]
        else:
            print(f"filter: {FilterSpec.from_dict(manifest['spec'])!r}")
            shard_dirs = [root]
            shard_manifests = [manifest]
        geometry = manifest["geometry"]
        print(f"geometry: memtable_capacity="
              f"{geometry['memtable_capacity']}, "
              f"value_bytes={geometry['value_bytes']}, "
              f"block_bytes={geometry['block_bytes']}, "
              f"store_values={geometry['store_values']}")
        compression = geometry.get("compression")
        if compression:
            print(f"compression: {compression['codec']} "
                  f"(block_bytes={compression['block_bytes']})")
        # Run layout straight from the manifests; filter bit counts come
        # from mapped frames whose payloads are never materialized.
        shard_run_keys = []
        filter_bits = 0
        for directory, shard_manifest in zip(shard_dirs, shard_manifests, strict=True):
            run_keys = []
            for entry in shard_manifest.get("runs", []):
                name = _manifest_field(entry, "file", directory)
                run_keys.append(int(_manifest_field(entry, "num_keys",
                                                    directory)))
                filter_path = directory / (name + _FILTER_SUFFIX)
                try:
                    frame = map_frame(filter_path)
                    if frame.kind != int(entry.get("filter_kind", frame.kind)):
                        raise SerialError(
                            f"frame kind {frame.kind} does not match the "
                            f"manifest's kind {entry['filter_kind']}"
                        )
                    filter_bits += handle_from_bytes(frame.view).size_bits
                except SerialError as exc:
                    raise SerialError(
                        f"corrupt filter block {filter_path}: {exc}"
                    ) from exc
            shard_run_keys.append(run_keys)
        total_runs = sum(len(keys) for keys in shard_run_keys)
        total_keys = sum(sum(keys) for keys in shard_run_keys)
        bits_per_key = filter_bits / total_keys if total_keys else 0.0
        print(f"runs: {total_runs}, keys: {total_keys}, "
              f"filter bits: {filter_bits} ({bits_per_key:.2f} bits/key)")
        # Pre-compaction manifests lack the geometry field entirely:
        # coerce .get(...) so they inspect as manual instead of failing.
        policy = coerce_compaction(geometry.get("compaction"))
        policy_dict = compaction_to_dict(policy)
        params = ", ".join(
            f"{k}={v}" for k, v in policy_dict["params"].items()
        )
        print(f"compaction: {policy_dict['policy']}"
              + (f" ({params})" if params else ""))
        describe = policy if policy is not None else SizeTieredPolicy()
        levels: dict = {}
        pending = False
        for run_keys in shard_run_keys:
            for entry in describe.describe_levels(run_keys):
                bucket = levels.setdefault(
                    entry["level"],
                    {"level": entry["level"], "runs": 0, "keys": 0},
                )
                bucket["runs"] += entry["runs"]
                bucket["keys"] += entry["keys"]
            pending = pending or (
                policy is not None and policy.pick(run_keys) is not None
            )
        for level in sorted(levels):
            entry = levels[level]
            print(f"  level {entry['level']}: {entry['runs']} run(s), "
                  f"{entry['keys']} keys")
        if pending:
            print("  pending: a merge window is eligible")
        if policy is not None:
            # A background policy gets a scheduler on open: one worker
            # for the flat engine, one per shard for the sharded one.
            workers = len(shard_dirs) if engine == "sharded-lsm" else 1
            print(f"  scheduler: {workers} worker(s), merges=0, "
                  "in flight 0, pending 0")
        # WAL state from the record stream, against each shard manifest's
        # epoch: records at the manifest epoch replay on the next open,
        # older ones are already durable in runs and will be discarded.
        epoch = 0
        records = wal_bytes = replay_records = replay_ops = stale = 0
        torn_any = False
        for directory, shard_manifest in zip(shard_dirs, shard_manifests, strict=True):
            wal_path = directory / WAL_NAME
            if not wal_path.is_file():
                raise SerialError(
                    f"store at {directory} has no write-ahead log "
                    f"({WAL_NAME} is missing)"
                )
            header, recs, valid_end, torn = read_wal(wal_path)
            log_epoch = int(header.get("epoch", 0))
            epoch = max(epoch, log_epoch)
            wal_bytes += valid_end
            torn_any = torn_any or torn
            manifest_epoch = int(shard_manifest.get("wal_epoch", 0))
            if log_epoch >= manifest_epoch:
                records += len(recs)
                replay_records += len(recs)
                replay_ops += sum(int(rec.keys.size) for rec in recs)
            else:
                stale += len(recs)
        print(f"wal: sync={geometry['wal_sync']}, epoch={epoch}, "
              f"pending records: {records} ({wal_bytes} bytes)")
        if replay_records or torn_any:
            torn = " (torn tail truncated)" if torn_any else ""
            print(f"wal replay on open: {replay_records} records"
                  f" / {replay_ops} ops{torn}")
        if stale:
            print(f"wal: {stale} stale record(s) from an older epoch "
                  "(already durable in runs; discarded on open)")
    except SerialError as exc:
        print(f"cannot inspect store {args.path}: {exc}")
        return 2
    return 0


def _cmd_store_recover(args) -> int:
    from pathlib import Path

    from repro.api import open_store
    from repro.lsm.store import MANIFEST_NAME
    from repro.serial import SerialError

    if not (Path(args.path) / MANIFEST_NAME).is_file():
        print(f"{args.path} holds no store; run `repro store init` first")
        return 2
    try:
        with open_store(path=args.path) as db:
            wal = db.wal_info()
            torn = " (torn tail truncated)" if wal["recovered_torn_tail"] else ""
            print(f"replayed {wal['replayed_records']} log records "
                  f"/ {wal['replayed_ops']} ops{torn}")
            if wal["discarded_stale_records"]:
                print(f"discarded {wal['discarded_stale_records']} stale "
                      f"records already persisted in runs")
            db.flush()  # recovered writes into durable runs; log truncated
            print(f"recovered store: {db.num_keys} keys live across "
                  f"{_run_count(db)} runs; write-ahead log empty")
    except SerialError as exc:
        print(f"cannot recover store {args.path}: {exc}")
        return 2
    return 0


def _cmd_store_bench_server(args) -> int:
    import json
    import shutil
    from pathlib import Path

    from repro.api import FilterSpec, open_store
    from repro.server.bench import run_benchmark

    base = Path(args.path)
    base.mkdir(parents=True, exist_ok=True)
    modes = iter(("coalesced", "uncoalesced"))

    def make_store():
        root = base / next(modes)
        shutil.rmtree(root, ignore_errors=True)
        return open_store(
            path=root,
            filter=FilterSpec(
                "bloomrf", {"bits_per_key": 14, "max_range": 1 << 12}
            ),
            memtable_capacity=1 << 14,
            store_values=True,
            wal_sync="batch",
            wal_group_commit=64,
        )

    result = run_benchmark(
        make_store,
        clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
    )
    print(json.dumps(result, indent=2))
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    from pathlib import Path

    from repro.api import open_store
    from repro.lsm.store import MANIFEST_NAME
    from repro.server import run_server

    if not (Path(args.path) / MANIFEST_NAME).is_file():
        print(f"{args.path} holds no store; run `repro store init` first")
        return 2

    def ready(host: str, port: int) -> None:
        mode = "per-request dispatch" if args.uncoalesced else "coalescing"
        print(
            f"serving {args.path} on {host}:{port} ({mode}); "
            f"Ctrl-C drains and stops",
            flush=True,
        )

    with open_store(path=args.path) as db:
        server = asyncio.run(
            run_server(
                db,
                args.host,
                args.port,
                coalesce=not args.uncoalesced,
                max_inflight=args.max_inflight,
                on_ready=ready,
            )
        )
        info = server.info()
        print(
            f"served {info['requests']} requests over "
            f"{info['connections']} connections in {info['ticks']} ticks "
            f"({info['mean_tick_ops']:.1f} ops/tick, "
            f"{info['barriers']} ack barriers)"
        )
    return 0


_STORE_COMMANDS = {
    "init": _cmd_store_init,
    "ingest": _cmd_store_ingest,
    "query": _cmd_store_query,
    "compact": _cmd_store_compact,
    "inspect": _cmd_store_inspect,
    "recover": _cmd_store_recover,
    "bench-server": _cmd_store_bench_server,
}

def _cmd_lint(args) -> int:
    from repro.analysis.cli import main as lint_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    if args.show_suppressed:
        argv.append("--show-suppressed")
    return lint_main(argv)


_COMMANDS = {
    "tune": _cmd_tune,
    "model": _cmd_model,
    "measure": _cmd_measure,
    "inspect": _cmd_inspect,
    "build": _cmd_build,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
