"""Standard Bloom filters (the paper's point-filter baseline).

Two construction styles are provided, matching the systems the paper
compares against:

* ``style="rocksdb"`` — ``k = floor(ln 2 * bits_per_key)`` independent-probe
  positions derived by double hashing, like RocksDB's full filter (the paper:
  "BFs have 10 * ln 2 = 6.93 hash functions, floored to 6 in RocksDB").
* ``style="optimal"`` — ``k`` rounded to the nearest integer of the optimum.

Only point lookups are supported; this is exactly the limitation motivating
point-range filters (Sect. 1).
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import check_bounds_rows, round_up
from repro.bitarray import BitArray
from repro.hashing import double_hash_positions, double_hash_positions_array

__all__ = ["BloomFilter", "optimal_num_hashes", "bits_for_fpr"]


def optimal_num_hashes(bits_per_key: float, style: str = "rocksdb") -> int:
    """Hash count for a space budget: floored (RocksDB) or rounded (optimal)."""
    raw = math.log(2) * bits_per_key
    if style == "rocksdb":
        return max(1, math.floor(raw))
    if style == "optimal":
        return max(1, round(raw))
    raise ValueError(f"unknown Bloom filter style {style!r}")


def bits_for_fpr(n_keys: int, fpr: float) -> int:
    """Standard sizing: ``m = -n ln(eps) / (ln 2)^2`` bits."""
    if not 0 < fpr < 1:
        raise ValueError(f"fpr must be in (0, 1), got {fpr}")
    return max(64, math.ceil(-n_keys * math.log(fpr) / (math.log(2) ** 2)))


class BloomFilter:
    """Classic Bloom filter over integer keys."""

    def __init__(
        self,
        n_keys: int,
        bits_per_key: float,
        style: str = "rocksdb",
        num_hashes: int | None = None,
        seed: int = 0xB10F,
    ) -> None:
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        if bits_per_key <= 0:
            raise ValueError(f"bits_per_key must be positive, got {bits_per_key}")
        self.num_bits = round_up(max(int(n_keys * bits_per_key), 64), 64)
        self.num_hashes = (
            num_hashes if num_hashes is not None else optimal_num_hashes(bits_per_key, style)
        )
        self.seed = seed
        self._bits = BitArray(self.num_bits)
        self._num_keys = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def size_bits(self) -> int:
        return self.num_bits

    def fill_ratio(self) -> float:
        return self._bits.fill_ratio()

    @property
    def bits(self) -> BitArray:
        """Raw storage (scatter diagnostics for Fig. 5 read this)."""
        return self._bits

    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        for pos in double_hash_positions(key, self.num_hashes, self.num_bits, self.seed):
            self._bits.set_bit(pos)
        self._num_keys += 1

    def insert_many(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return
        positions = double_hash_positions_array(
            keys, self.num_hashes, self.num_bits, self.seed
        )
        self._bits.set_bits(positions.ravel())
        self._num_keys += int(keys.size)

    def contains_point(self, key: int) -> bool:
        return all(
            self._bits.test_bit(pos)
            for pos in double_hash_positions(
                key, self.num_hashes, self.num_bits, self.seed
            )
        )

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        positions = double_hash_positions_array(
            keys, self.num_hashes, self.num_bits, self.seed
        )
        result = np.ones(keys.size, dtype=bool)
        for row in positions:
            result &= self._bits.test_bits(row)
        return result

    __contains__ = contains_point

    # ------------------------------------------------------------------
    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Conservative range probe: always "maybe" (True).

        A point filter cannot prune ranges — exactly the limitation that
        motivates point-range filters (Sect. 1).  Exposed so the Bloom
        baseline satisfies the uniform :class:`repro.api.RangeFilter`
        protocol; the answer is sound (never a false negative).
        """
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        return True

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Bulk form of :meth:`contains_range`: all-True per query row."""
        return np.ones(check_bounds_rows(bounds).shape[0], dtype=bool)

    # ------------------------------------------------------------------
    def union_into(self, target: "BloomFilter") -> "BloomFilter":
        """OR this filter's bits into ``target`` (same geometry + seed).

        Same contract as :meth:`repro.core.bloomrf.BloomRF.union_into`:
        double-hash probe positions are fixed by ``(num_bits, num_hashes,
        seed)``, so the union equals a filter built from both insert
        streams — the primitive LSM compaction uses to merge filter blocks.
        """
        if (self.num_bits, self.num_hashes, self.seed) != (
            target.num_bits,
            target.num_hashes,
            target.seed,
        ):
            raise ValueError(
                "cannot union Bloom filters with different geometry: "
                f"({self.num_bits}, k={self.num_hashes}, seed={self.seed}) vs "
                f"({target.num_bits}, k={target.num_hashes}, seed={target.seed})"
            )
        target._bits.union_with(self._bits)
        target._num_keys += self._num_keys
        return target

    # ------------------------------------------------------------------
    def expected_fpr(self) -> float:
        """Analytic ``(1 - e^{-kn/m})^k`` for the current load."""
        if self._num_keys == 0:
            return 0.0
        return (
            1.0 - math.exp(-self.num_hashes * self._num_keys / self.num_bits)
        ) ** self.num_hashes

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the shared framed format (see :mod:`repro.serial`)."""
        from repro import serial

        return serial.pack_frame(
            serial.KIND_BLOOM,
            {
                "num_bits": self.num_bits,
                "num_hashes": self.num_hashes,
                "seed": self.seed,
                "num_keys": self._num_keys,
            },
            self._bits.to_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Reconstruct a filter serialized with :meth:`to_bytes`."""
        from repro import serial

        header, payloads = serial.unpack_frame(
            data, expect_kind=serial.KIND_BLOOM
        )
        if len(payloads) != 1:
            raise ValueError(
                f"Bloom frame carries {len(payloads)} payloads, expected 1"
            )
        filt = cls.__new__(cls)
        filt.num_bits = int(header["num_bits"])
        filt.num_hashes = int(header["num_hashes"])
        filt.seed = int(header["seed"])
        filt._num_keys = int(header["num_keys"])
        load = (
            BitArray.from_buffer
            if isinstance(payloads[0], memoryview)
            else BitArray.from_bytes
        )
        filt._bits = load(payloads[0], filt.num_bits)
        return filt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomFilter(bits={self.num_bits}, k={self.num_hashes}, "
            f"keys={self._num_keys})"
        )
