"""Prefix Bloom filter (classic range-capable BF, the paper's Fig. 9.D baseline).

A Bloom filter over *fixed-length prefixes*: every key is truncated to its
``domain_bits - prefix_level`` high bits before insertion.  Point lookups
probe the single prefix of the lookup key (losing precision — the paper calls
prefix BFs "impractical for point queries").  Range lookups enumerate every
prefix whose dyadic interval intersects the query, so probe cost grows
linearly with ``range_size / 2**prefix_level`` — the latency cliff visible in
Fig. 9.D.
"""

from __future__ import annotations

import numpy as np

from repro._util import bulk_range_eval
from repro.baselines.bloom import BloomFilter
from repro.dyadic import covering_prefix_range

__all__ = ["PrefixBloomFilter"]

# Range probes beyond this many prefixes answer a sound "maybe" instead of
# scanning forever (mirrors production prefix-BF usage, which only serves
# prefix-aligned scans).
_MAX_PROBES = 1 << 16


class PrefixBloomFilter:
    """Bloom filter over key prefixes at one fixed dyadic level."""

    def __init__(
        self,
        n_keys: int,
        bits_per_key: float,
        prefix_level: int,
        domain_bits: int = 64,
        seed: int = 0x9F1,
    ) -> None:
        if not 0 <= prefix_level < domain_bits:
            raise ValueError(
                f"prefix_level must be in [0, {domain_bits}), got {prefix_level}"
            )
        self.prefix_level = prefix_level
        self.domain_bits = domain_bits
        self._bloom = BloomFilter(
            n_keys=n_keys, bits_per_key=bits_per_key, style="optimal", seed=seed
        )
        self.last_probe_count = 0

    @classmethod
    def for_range(
        cls,
        n_keys: int,
        bits_per_key: float,
        expected_range: int,
        domain_bits: int = 64,
        seed: int = 0x9F1,
    ) -> "PrefixBloomFilter":
        """Pick the prefix level so a typical query touches ~2 prefixes."""
        level = max(0, min(domain_bits - 1, max(expected_range, 2).bit_length() - 1))
        return cls(
            n_keys=n_keys,
            bits_per_key=bits_per_key,
            prefix_level=level,
            domain_bits=domain_bits,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._bloom)

    @property
    def size_bits(self) -> int:
        return self._bloom.size_bits

    def insert(self, key: int) -> None:
        self._bloom.insert(key >> self.prefix_level)

    def insert_many(self, keys: np.ndarray) -> None:
        prefixes = np.asarray(keys, dtype=np.uint64) >> np.uint64(self.prefix_level)
        self._bloom.insert_many(prefixes)

    def contains_point(self, key: int) -> bool:
        """Point probe — answers at prefix granularity (high FPR by design)."""
        return self._bloom.contains_point(key >> self.prefix_level)

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Bulk point probe: one vectorized pass over the prefix filter."""
        prefixes = np.asarray(keys, dtype=np.uint64) >> np.uint64(self.prefix_level)
        return self._bloom.contains_point_many(prefixes)

    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Range probe; :attr:`last_probe_count` records the probes it cost.

        Cost is linear in the number of covering prefixes, illustrating why
        prefix BFs only suit range sizes near their fixed prefix level.
        The probe count drives the latency analyses (like Rosetta's
        ``last_probe_count``); the boolean answer matches the uniform
        :class:`repro.api.RangeFilter` protocol.
        """
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        p_lo, p_hi = covering_prefix_range(l_key, r_key, self.prefix_level)
        if p_hi - p_lo + 1 > _MAX_PROBES:
            self.last_probe_count = 1
            return True  # beyond practical enumeration: sound "maybe"
        self.last_probe_count = 0
        for prefix in range(p_lo, p_hi + 1):
            self.last_probe_count += 1
            if self._bloom.contains_point(prefix):
                return True
        return False

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Bulk range probe: boolean answer per ``(lo, hi)`` row."""
        return bulk_range_eval(self.contains_range, bounds)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the shared framed format (see :mod:`repro.serial`).

        The prefix level and domain ride in the header; the underlying
        Bloom filter nests as one payload frame, so the round-trip
        reconstructs every storage word bit for bit.
        """
        from repro import serial

        return serial.pack_frame(
            serial.KIND_PREFIX_BLOOM,
            {"prefix_level": self.prefix_level, "domain_bits": self.domain_bits},
            self._bloom.to_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrefixBloomFilter":
        """Reconstruct a filter serialized with :meth:`to_bytes`."""
        from repro import serial

        header, payloads = serial.unpack_frame(
            data, expect_kind=serial.KIND_PREFIX_BLOOM
        )
        if len(payloads) != 1:
            raise serial.SerialError(
                f"prefix-Bloom frame carries {len(payloads)} payloads, "
                "expected 1"
            )
        filt = cls.__new__(cls)
        filt.prefix_level = int(header["prefix_level"])
        filt.domain_bits = int(header["domain_bits"])
        filt._bloom = BloomFilter.from_bytes(payloads[0])
        filt.last_probe_count = 0
        return filt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PrefixBloomFilter(level={self.prefix_level}, "
            f"bits={self.size_bits}, keys={len(self)})"
        )
