"""SuRF trie builder: truncation, BFS layout, LOUDS-Dense/Sparse emission.

SuRF (Zhang et al. [49]) stores the *shortest distinguishing prefixes* of the
key set in a Fast Succinct Trie: each key is cut right after the byte that
separates it from its sorted neighbors, which bounds the trie size by the key
count instead of the key length — and is exactly the truncation whose lost
suffixes cause SuRF's range false positives on short ranges (the bloomRF
paper's Problem 1).

The builder works on sorted, distinct byte strings:

1. compute per-key kept lengths from neighbor LCPs,
2. BFS over the implicit trie, collecting per-level node layouts,
3. split levels into a LOUDS-Dense top (256-bit bitmaps per node) and a
   LOUDS-Sparse bottom (label byte + has-child bit + LOUDS bit per entry)
   using SuRF's size-ratio rule, and
4. emit suffix values per leaf (none / key hash / real key bits) in global
   BFS order, which is the order rank-based value lookup reconstructs.

A key that is a proper prefix of another stored key becomes a *prefix key*:
the D-IsPrefixKey bit of its node in the dense part, or a terminator label
(sorting before all real labels) in the sparse part.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.surf.bitvector import RankSelectBitVector
from repro.hashing import splitmix64

__all__ = ["TrieData", "build_trie", "SUFFIX_NONE", "SUFFIX_HASH", "SUFFIX_REAL"]

SUFFIX_NONE = "none"
SUFFIX_HASH = "hash"
SUFFIX_REAL = "real"

_TERM = -1  # terminator pseudo-label; sorts before every real byte

# Nominal per-unit sizes (bits) used for cutoff choice and size accounting,
# matching the SuRF paper: dense node = 2x256-bit maps + prefix-key bit;
# sparse entry = 8-bit label + has-child bit + LOUDS bit.
_DENSE_NODE_BITS = 2 * 256 + 1
_SPARSE_ENTRY_BITS = 10


@dataclass
class TrieData:
    """Everything the navigation layer needs, already rank/select-indexed."""

    num_keys: int
    # Dense part (levels [0, cutoff)):
    num_dense_nodes: int
    d_labels: RankSelectBitVector | None
    d_haschild: RankSelectBitVector | None
    d_leaf: RankSelectBitVector | None
    d_isprefix: RankSelectBitVector | None
    num_dense_values: int
    # Sparse part (levels >= cutoff):
    s_labels: np.ndarray  # uint16: 0 = terminator, byte b stored as b + 1
    s_haschild: RankSelectBitVector | None
    s_louds: RankSelectBitVector | None
    dense_to_sparse: int  # sparse root-node count (D2S)
    cutoff_level: int
    # Suffixes:
    suffix_mode: str
    suffix_bits: int
    suffixes: np.ndarray  # uint64, one per leaf/value in BFS order

    @property
    def nominal_bits(self) -> int:
        """SuRF's C++-level structure size (what bits/key accounting uses)."""
        return (
            self.num_dense_nodes * _DENSE_NODE_BITS
            + int(self.s_labels.size) * _SPARSE_ENTRY_BITS
            + int(self.suffixes.size) * self.suffix_bits
        )


def _kept_lengths(keys: list[bytes]) -> list[int]:
    """Shortest distinguishing length per key (>= 1, capped at key length)."""
    n = len(keys)
    lcp = [0] * (n - 1)
    for i in range(n - 1):
        a, b = keys[i], keys[i + 1]
        limit = min(len(a), len(b))
        j = 0
        while j < limit and a[j] == b[j]:
            j += 1
        lcp[i] = j
    kept = []
    for i in range(n):
        need = 1
        if i > 0:
            need = max(need, lcp[i - 1] + 1)
        if i < n - 1:
            need = max(need, lcp[i] + 1)
        kept.append(min(len(keys[i]), need))
    return kept


def _key_hash(data: bytes, seed: int) -> int:
    digest = splitmix64(len(data), seed=seed)
    for start in range(0, len(data), 8):
        chunk = data[start : start + 8]
        digest = splitmix64(digest ^ int.from_bytes(chunk, "big"), seed=seed)
    return digest


def _real_suffix(data: bytes, consumed: int, bits: int) -> int:
    """First ``bits`` key bits after the kept prefix, zero-padded."""
    if bits == 0:
        return 0
    tail = data[consumed:]
    nbytes = -(-bits // 8)
    padded = tail[:nbytes].ljust(nbytes, b"\x00")
    return int.from_bytes(padded, "big") >> (8 * nbytes - bits)


def build_trie(
    keys: list[bytes],
    suffix_mode: str = SUFFIX_NONE,
    suffix_bits: int = 0,
    dense_ratio: int = 64,
    seed: int = 0x50F1,
) -> TrieData:
    """Build the LOUDS-DS trie from sorted, distinct byte-string keys."""
    if suffix_mode not in (SUFFIX_NONE, SUFFIX_HASH, SUFFIX_REAL):
        raise ValueError(f"unknown suffix mode {suffix_mode!r}")
    if suffix_mode == SUFFIX_NONE:
        suffix_bits = 0
    elif not 0 <= suffix_bits <= 64:
        raise ValueError(f"suffix_bits must be in [0, 64], got {suffix_bits}")
    n = len(keys)
    if n == 0:
        raise ValueError("SuRF requires at least one key")
    for i in range(n - 1):
        if keys[i] >= keys[i + 1]:
            raise ValueError("keys must be sorted and distinct")
    if any(len(k) == 0 for k in keys):
        raise ValueError("empty keys are not supported")

    kept = _kept_lengths(keys)

    # ------------------------------------------------------------------
    # BFS: build per-level node layouts.
    # Node entry: (label, leaf_key_index) — leaf_key_index None => internal.
    # ------------------------------------------------------------------
    levels: list[list[list[tuple[int, int | None]]]] = []
    queue: list[tuple[int, int]] = [(0, n)]
    depth = 0
    while queue:
        level_nodes: list[list[tuple[int, int | None]]] = []
        next_queue: list[tuple[int, int]] = []
        for lo, hi in queue:
            entries: list[tuple[int, int | None]] = []
            i = lo
            if kept[i] == depth:
                entries.append((_TERM, i))  # prefix key ends at this node
                i += 1
            while i < hi:
                byte = keys[i][depth]
                j = i
                while j < hi and keys[j][depth] == byte:
                    j += 1
                if j - i == 1:
                    entries.append((byte, i))  # single key: leaf edge
                else:
                    entries.append((byte, None))
                    next_queue.append((i, j))
                i = j
            level_nodes.append(entries)
        levels.append(level_nodes)
        queue = next_queue
        depth += 1

    # ------------------------------------------------------------------
    # Choose the dense/sparse cutoff level: SuRF keeps the upper levels in
    # LOUDS-Dense only while their dense encoding stays at most 1/R of the
    # LOUDS-Sparse size of the remaining lower levels (default R = 64).
    # ------------------------------------------------------------------
    level_dense_cost = [len(lv) * _DENSE_NODE_BITS for lv in levels]
    level_sparse_cost = [
        sum(len(node) for node in lv) * _SPARSE_ENTRY_BITS for lv in levels
    ]
    cutoff = 0
    dense_cum = 0
    sparse_below = sum(level_sparse_cost)
    for level in range(len(levels)):
        dense_cum += level_dense_cost[level]
        sparse_below -= level_sparse_cost[level]
        if dense_cum * dense_ratio <= max(sparse_below, 1):
            cutoff = level + 1

    # ------------------------------------------------------------------
    # Emit structures.
    # ------------------------------------------------------------------
    dense_levels = levels[:cutoff]
    sparse_levels = levels[cutoff:]
    num_dense_nodes = sum(len(lv) for lv in dense_levels)

    d_labels = np.zeros(num_dense_nodes * 256, dtype=bool)
    d_haschild = np.zeros(num_dense_nodes * 256, dtype=bool)
    d_isprefix = np.zeros(max(num_dense_nodes, 1), dtype=bool)
    suffix_list: list[int] = []

    def emit_suffix(key_index: int, consumed: int) -> None:
        if suffix_mode == SUFFIX_HASH:
            suffix_list.append(
                _key_hash(keys[key_index], seed) & ((1 << suffix_bits) - 1)
                if suffix_bits
                else 0
            )
        elif suffix_mode == SUFFIX_REAL:
            suffix_list.append(_real_suffix(keys[key_index], consumed, suffix_bits))
        else:
            suffix_list.append(0)

    node_counter = 0
    for level, level_nodes in enumerate(dense_levels):
        for entries in level_nodes:
            base = node_counter * 256
            for label, key_index in entries:
                if label == _TERM:
                    d_isprefix[node_counter] = True
                    emit_suffix(key_index, level)
                elif key_index is not None:
                    d_labels[base + label] = True
                    emit_suffix(key_index, level + 1)
                else:
                    d_labels[base + label] = True
                    d_haschild[base + label] = True
            node_counter += 1
    num_dense_values = len(suffix_list)

    s_labels_list: list[int] = []
    s_haschild_list: list[bool] = []
    s_louds_list: list[bool] = []
    for level_offset, level_nodes in enumerate(sparse_levels):
        level = cutoff + level_offset
        for entries in level_nodes:
            first = True
            for label, key_index in entries:
                s_labels_list.append(0 if label == _TERM else label + 1)
                s_louds_list.append(first)
                first = False
                if label == _TERM:
                    s_haschild_list.append(False)
                    emit_suffix(key_index, level)
                elif key_index is not None:
                    s_haschild_list.append(False)
                    emit_suffix(key_index, level + 1)
                else:
                    s_haschild_list.append(True)

    # Sparse root-node count: children crossing the dense/sparse boundary,
    # or the root itself when the whole trie is sparse.
    if cutoff == 0:
        dense_to_sparse = 1
    elif sparse_levels:
        dense_to_sparse = sum(
            1
            for entries in dense_levels[-1]
            for label, key_index in entries
            if label != _TERM and key_index is None
        )
    else:
        dense_to_sparse = 0

    return TrieData(
        num_keys=n,
        num_dense_nodes=num_dense_nodes,
        d_labels=RankSelectBitVector(d_labels) if num_dense_nodes else None,
        d_haschild=RankSelectBitVector(d_haschild) if num_dense_nodes else None,
        d_leaf=(
            RankSelectBitVector(d_labels & ~d_haschild) if num_dense_nodes else None
        ),
        d_isprefix=RankSelectBitVector(d_isprefix) if num_dense_nodes else None,
        num_dense_values=num_dense_values,
        s_labels=np.asarray(s_labels_list, dtype=np.uint16),
        s_haschild=(
            RankSelectBitVector(np.asarray(s_haschild_list, dtype=bool))
            if s_labels_list
            else None
        ),
        s_louds=(
            RankSelectBitVector(np.asarray(s_louds_list, dtype=bool))
            if s_labels_list
            else None
        ),
        dense_to_sparse=dense_to_sparse,
        cutoff_level=cutoff,
        suffix_mode=suffix_mode,
        suffix_bits=suffix_bits,
        suffixes=np.asarray(suffix_list, dtype=np.uint64),
    )
