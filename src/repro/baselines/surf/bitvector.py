"""Succinct rank/select bitvector for the LOUDS-encoded trie.

Construction is vectorized (NumPy); queries are scalar but O(1)-ish:
``rank1`` combines a precomputed per-word cumulative popcount with one
in-word popcount; ``select1`` binary-searches the cumulative array and scans
a single word.  This trades a little space (one int64 per 64 bits) for the
simplicity Python needs — the *nominal* succinct size used in the bits/key
accounting is reported separately by the SuRF facade.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RankSelectBitVector"]


class RankSelectBitVector:
    """Immutable bitvector with 1-based select and exclusive/inclusive rank."""

    __slots__ = ("num_bits", "words", "_cum", "num_ones")

    def __init__(self, bits: np.ndarray) -> None:
        """Build from a 0/1 (or boolean) array, one entry per bit."""
        bits = np.asarray(bits, dtype=np.uint8)
        self.num_bits = int(bits.size)
        padded = np.zeros(-(-self.num_bits // 64) * 64, dtype=np.uint8)
        padded[: self.num_bits] = bits
        self.words = np.packbits(padded, bitorder="little").view(np.uint64)
        counts = np.bitwise_count(self.words).astype(np.int64)
        self._cum = np.concatenate(([0], np.cumsum(counts)))
        self.num_ones = int(self._cum[-1])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_bits

    def get(self, pos: int) -> bool:
        """Bit value at ``pos``."""
        return bool((int(self.words[pos >> 6]) >> (pos & 63)) & 1)

    def rank1(self, pos: int) -> int:
        """Number of set bits in ``[0, pos)`` (exclusive rank)."""
        if pos <= 0:
            return 0
        if pos >= self.num_bits:
            return self.num_ones
        word_idx = pos >> 6
        within = int(self.words[word_idx]) & ((1 << (pos & 63)) - 1)
        return int(self._cum[word_idx]) + within.bit_count()

    def rank1_inclusive(self, pos: int) -> int:
        """Number of set bits in ``[0, pos]``."""
        return self.rank1(pos + 1)

    def select1(self, count: int) -> int:
        """Position of the ``count``-th set bit (1-based).

        Raises ``IndexError`` if fewer than ``count`` bits are set.
        """
        if not 1 <= count <= self.num_ones:
            raise IndexError(
                f"select1({count}) out of range (only {self.num_ones} ones)"
            )
        word_idx = int(np.searchsorted(self._cum, count, side="left")) - 1
        remaining = count - int(self._cum[word_idx])
        word = int(self.words[word_idx])
        pos = word_idx << 6
        while True:
            low_bit = word & -word
            remaining -= 1
            if remaining == 0:
                return pos + low_bit.bit_length() - 1
            word ^= low_bit

    def next_set_bit(self, pos: int) -> int:
        """Smallest set position >= ``pos``, or -1 when none exists."""
        if pos >= self.num_bits:
            return -1
        word_idx = pos >> 6
        word = int(self.words[word_idx]) >> (pos & 63)
        if word:
            return pos + (word & -word).bit_length() - 1
        for idx in range(word_idx + 1, self.words.size):
            word = int(self.words[idx])
            if word:
                return (idx << 6) + (word & -word).bit_length() - 1
        return -1

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Raw little-endian storage words (for framed serialization)."""
        return self.words.tobytes()

    @classmethod
    def from_words_bytes(cls, data: bytes, num_bits: int) -> "RankSelectBitVector":
        """Rebuild from :meth:`to_bytes` output plus the logical bit count.

        The rank/select acceleration structures are recomputed, so the
        restored vector answers every query identically to the original.
        """
        words = np.frombuffer(data, dtype=np.uint64)
        if words.size != -(-num_bits // 64):
            raise ValueError(
                f"bit-vector payload holds {words.size} words, expected "
                f"{-(-num_bits // 64)} for {num_bits} bits"
            )
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")[:num_bits]
        return cls(bits)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RankSelectBitVector(bits={self.num_bits}, ones={self.num_ones})"
