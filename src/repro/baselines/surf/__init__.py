"""SuRF — Fast Succinct Trie range filter (Zhang et al., SIGMOD 2018 [49]).

Built from scratch: rank/select bitvectors, a LOUDS-Dense top / LOUDS-Sparse
bottom trie over shortest distinguishing key prefixes, and the Base / Hash /
Real suffix variants.  See :mod:`repro.baselines.surf.builder` for the
construction and :mod:`repro.baselines.surf.surf` for navigation.
"""

from repro.baselines.surf.bitvector import RankSelectBitVector
from repro.baselines.surf.builder import (
    SUFFIX_HASH,
    SUFFIX_NONE,
    SUFFIX_REAL,
    TrieData,
    build_trie,
)
from repro.baselines.surf.surf import SuRF, SurfFilter

__all__ = [
    "SuRF",
    "SurfFilter",
    "RankSelectBitVector",
    "TrieData",
    "build_trie",
    "SUFFIX_NONE",
    "SUFFIX_HASH",
    "SUFFIX_REAL",
]
