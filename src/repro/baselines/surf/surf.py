"""SuRF: point and range queries over the LOUDS-DS fast succinct trie.

Navigation uses the standard rank/select formulas:

* dense child of ``(node n, byte c)``: ``rank1(D-HasChild, n*256 + c)``
  (inclusive) — BFS node numbers start at 0 for the root, so the i-th
  has-child position leads to node i; numbers past the dense node count
  cross into the sparse part.
* sparse node ``s`` spans label positions
  ``[select1(S-LOUDS, s+1), select1(S-LOUDS, s+2))``; the child of position
  ``p`` is sparse node ``D2S + rank1(S-HasChild, p) - 1`` where ``D2S``
  counts the sparse root nodes created at the dense/sparse boundary.
* leaf values (suffixes) are indexed by rank over the leaf indicators, in
  global BFS order (dense prefix-key bit sorts before the node's labels,
  the sparse terminator label sorts before all real labels).

Range queries implement ``moveToKeyGreaterThan``: walk down along the left
query bound, fall back to the smallest leaf of the first subtree to the
right when a byte cannot be matched, and accept when the found leaf's
*minimal extension* (stored prefix, refined by real-suffix bits when
available, zero-padded) does not exceed the right bound.  Truncated suffixes
make this conservative — SuRF's documented source of short-range false
positives — but never produce a false negative, which the property tests
verify.
"""

from __future__ import annotations

import numpy as np

from repro._util import bulk_point_eval, bulk_range_eval
from repro.baselines.surf.bitvector import RankSelectBitVector
from repro.baselines.surf.builder import (
    SUFFIX_HASH,
    SUFFIX_NONE,
    SUFFIX_REAL,
    TrieData,
    build_trie,
    _key_hash,
    _real_suffix,
)

__all__ = ["SuRF", "SurfFilter"]

_DENSE = 0
_SPARSE = 1


def _uint64_to_bytes(key: int) -> bytes:
    return int(key).to_bytes(8, "big")


def _min_ext_leq(min_ext: bytes, bound: bytes) -> bool:
    """Is ``min_ext`` zero-padded lexicographically <= ``bound``?"""
    common = min(len(min_ext), len(bound))
    head_a, head_b = min_ext[:common], bound[:common]
    if head_a != head_b:
        return head_a < head_b
    if len(min_ext) <= len(bound):
        return True
    return all(b == 0 for b in min_ext[common:])


class SuRF:
    """Fast Succinct Trie range filter (SuRF-Base / -Hash / -Real)."""

    def __init__(
        self,
        keys: list[bytes],
        suffix_mode: str = SUFFIX_REAL,
        suffix_bits: int = 8,
        dense_ratio: int = 64,
        seed: int = 0x50F1,
    ) -> None:
        self._seed = seed
        self._trie: TrieData = build_trie(
            keys,
            suffix_mode=suffix_mode,
            suffix_bits=suffix_bits,
            dense_ratio=dense_ratio,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_uint64(
        cls,
        keys: np.ndarray,
        suffix_mode: str = SUFFIX_REAL,
        suffix_bits: int = 8,
        dense_ratio: int = 64,
        seed: int = 0x50F1,
    ) -> "SuRF":
        """Build over 64-bit integer keys (big-endian byte order)."""
        keys = np.unique(np.asarray(keys, dtype=np.uint64))
        raw = keys.astype(">u8").tobytes()
        key_bytes = [raw[i : i + 8] for i in range(0, len(raw), 8)]
        return cls(
            key_bytes,
            suffix_mode=suffix_mode,
            suffix_bits=suffix_bits,
            dense_ratio=dense_ratio,
            seed=seed,
        )

    @classmethod
    def tuned_uint64(
        cls,
        keys: np.ndarray,
        bits_per_key: float,
        suffix_mode: str = SUFFIX_REAL,
        dense_ratio: int = 64,
        seed: int = 0x50F1,
    ) -> "SuRF":
        """Pick the largest suffix length that fits the space budget.

        SuRF cannot hit arbitrary budgets: the base trie is a floor.  When
        even ``suffix_bits = 0`` exceeds the budget the base filter is
        returned and its real ``size_bits`` reports the overshoot (the paper
        notes it could not always select a SuRF setting).
        """
        base = cls.from_uint64(
            keys, suffix_mode=SUFFIX_NONE, suffix_bits=0,
            dense_ratio=dense_ratio, seed=seed,
        )
        n = base._trie.num_keys
        budget = int(bits_per_key * n)
        spare = budget - base._trie.nominal_bits
        suffix_bits = max(0, min(64, spare // n))
        if suffix_bits == 0 or suffix_mode == SUFFIX_NONE:
            return base
        return cls.from_uint64(
            keys, suffix_mode=suffix_mode, suffix_bits=int(suffix_bits),
            dense_ratio=dense_ratio, seed=seed,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._trie.num_keys

    @property
    def size_bits(self) -> int:
        """Nominal structure size (C++-equivalent bits; see builder)."""
        return self._trie.nominal_bits

    @property
    def suffix_mode(self) -> str:
        return self._trie.suffix_mode

    @property
    def suffix_bits(self) -> int:
        return self._trie.suffix_bits

    @property
    def cutoff_level(self) -> int:
        """First LOUDS-Sparse level (levels above are LOUDS-Dense)."""
        return self._trie.cutoff_level

    # ------------------------------------------------------------------
    # node navigation helpers
    # ------------------------------------------------------------------
    def _root(self) -> tuple[int, int]:
        if self._trie.num_dense_nodes:
            return (_DENSE, 0)
        return (_SPARSE, 0)

    def _dense_child(self, node: int, byte: int) -> tuple[int, int]:
        child = self._trie.d_haschild.rank1_inclusive(node * 256 + byte)
        if child < self._trie.num_dense_nodes:
            return (_DENSE, child)
        return (_SPARSE, child - self._trie.num_dense_nodes)

    def _sparse_child(self, pos: int) -> tuple[int, int]:
        t = self._trie
        return (_SPARSE, t.dense_to_sparse + t.s_haschild.rank1_inclusive(pos) - 1)

    def _sparse_span(self, node: int) -> tuple[int, int]:
        t = self._trie
        start = t.s_louds.select1(node + 1)
        if node + 2 <= t.s_louds.num_ones:
            return start, t.s_louds.select1(node + 2)
        return start, int(t.s_labels.size)

    def _dense_leaf_value(self, node: int, byte: int) -> int:
        t = self._trie
        return t.d_isprefix.rank1(node + 1) + t.d_leaf.rank1(node * 256 + byte)

    def _dense_prefix_value(self, node: int) -> int:
        t = self._trie
        return t.d_isprefix.rank1(node) + t.d_leaf.rank1(node * 256)

    def _sparse_leaf_value(self, pos: int) -> int:
        t = self._trie
        leaves_before = pos + 1 - t.s_haschild.rank1_inclusive(pos)
        return t.num_dense_values + leaves_before - 1

    # ------------------------------------------------------------------
    # suffix checks
    # ------------------------------------------------------------------
    def _suffix_matches(self, value_index: int, key: bytes, consumed: int) -> bool:
        t = self._trie
        if t.suffix_mode == SUFFIX_NONE or t.suffix_bits == 0:
            return True
        stored = int(t.suffixes[value_index])
        if t.suffix_mode == SUFFIX_HASH:
            return stored == (
                _key_hash(key, self._seed) & ((1 << t.suffix_bits) - 1)
            )
        return stored == _real_suffix(key, consumed, t.suffix_bits)

    def _suffix_below(self, value_index: int, bound: bytes, consumed: int) -> bool:
        """Do the stored real-suffix bits prove the key is below ``bound``?

        Used by the successor walk when a stored (truncated) key is a prefix
        of the left query bound: comparing the stored suffix bits with the
        bound's next bits can prove the key smaller, letting SuRF-Real skip
        it (the refinement that gives SuRF-Real its range-FPR advantage).
        Conservative: returns False whenever uncertain.
        """
        t = self._trie
        if t.suffix_mode != SUFFIX_REAL or t.suffix_bits == 0:
            return False
        stored = int(t.suffixes[value_index])
        return stored < _real_suffix(bound, consumed, t.suffix_bits)

    def _suffix_as_bytes(self, value_index: int) -> bytes:
        """Real-suffix bits as a zero-padded byte fragment (range refinement)."""
        t = self._trie
        if t.suffix_mode != SUFFIX_REAL or t.suffix_bits == 0:
            return b""
        nbytes = -(-t.suffix_bits // 8)
        value = int(t.suffixes[value_index]) << (8 * nbytes - t.suffix_bits)
        return value.to_bytes(nbytes, "big")

    # ------------------------------------------------------------------
    # point lookup
    # ------------------------------------------------------------------
    def contains_point(self, key: int | bytes) -> bool:
        """Approximate membership; false positives only."""
        data = _uint64_to_bytes(key) if isinstance(key, int) else key
        t = self._trie
        kind, node = self._root()
        depth = 0
        while True:
            if kind == _DENSE:
                if depth == len(data):
                    return bool(t.d_isprefix.get(node)) and self._suffix_matches(
                        self._dense_prefix_value(node), data, depth
                    )
                byte = data[depth]
                flat = node * 256 + byte
                if not t.d_labels.get(flat):
                    return False
                if not t.d_haschild.get(flat):
                    return self._suffix_matches(
                        self._dense_leaf_value(node, byte), data, depth + 1
                    )
                kind, node = self._dense_child(node, byte)
                depth += 1
            else:
                start, end = self._sparse_span(node)
                if depth == len(data):
                    if t.s_labels[start] == 0:  # terminator leaf
                        return self._suffix_matches(
                            self._sparse_leaf_value(start), data, depth
                        )
                    return False
                target = data[depth] + 1
                offset = int(
                    np.searchsorted(t.s_labels[start:end], np.uint16(target))
                )
                pos = start + offset
                if pos >= end or int(t.s_labels[pos]) != target:
                    return False
                if not t.s_haschild.get(pos):
                    return self._suffix_matches(
                        self._sparse_leaf_value(pos), data, depth + 1
                    )
                kind, node = self._sparse_child(pos)
                depth += 1

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Bulk point probe over a uint64 key array.

        The trie walk is pointer-chasing, so this is a uniform bulk
        interface (one scalar probe per key), not a fast path.
        """
        return bulk_point_eval(self.contains_point, keys)

    __contains__ = contains_point

    # ------------------------------------------------------------------
    # range lookup
    # ------------------------------------------------------------------
    def contains_range(self, l_key: int | bytes, r_key: int | bytes) -> bool:
        """Approximate emptiness of ``[l_key, r_key]`` (inclusive bounds)."""
        lo = _uint64_to_bytes(l_key) if isinstance(l_key, int) else l_key
        hi = _uint64_to_bytes(r_key) if isinstance(r_key, int) else r_key
        if not lo <= hi:
            raise ValueError(f"empty query range [{lo!r}, {hi!r}]")
        leaf = self._successor_leaf(lo)
        if leaf is None:
            return False
        path, value_index = leaf
        return _min_ext_leq(path + self._suffix_as_bytes(value_index), hi)

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Bulk range probe over an ``(n, 2)`` array of inclusive bounds.

        The trie walk is pointer-chasing, so this is a uniform bulk
        interface (one scalar probe per row), not a fast path.
        """
        return bulk_range_eval(self.contains_range, bounds)

    # -- moveToKeyGreaterThan ------------------------------------------
    def _successor_leaf(self, bound: bytes) -> tuple[bytes, int] | None:
        """Smallest stored leaf whose subtree may contain a key >= bound.

        Returns ``(stored_prefix, value_index)`` or None when every stored
        key is provably below ``bound``.
        """
        t = self._trie
        stack: list[tuple[int, int, int]] = []  # (kind, node, followed byte)
        path = bytearray()
        kind, node = self._root()
        depth = 0
        while True:
            if depth >= len(bound):
                return self._min_leaf(kind, node, path)
            byte = bound[depth]
            if kind == _DENSE:
                if t.d_isprefix.get(node):
                    # The stored prefix-key equals the walked path, a prefix
                    # of the bound: its (unknown) extension may be >= bound —
                    # unless the real-suffix bits prove it smaller.
                    value = self._dense_prefix_value(node)
                    if not self._suffix_below(value, bound, depth):
                        return bytes(path), value
                flat = node * 256 + byte
                descend = False
                if t.d_labels.get(flat):
                    if t.d_haschild.get(flat):
                        descend = True
                    else:
                        value = self._dense_leaf_value(node, byte)
                        if not self._suffix_below(value, bound, depth + 1):
                            path.append(byte)
                            return bytes(path), value
                if descend:
                    stack.append((kind, node, byte))
                    path.append(byte)
                    kind, node = self._dense_child(node, byte)
                    depth += 1
                    continue
                result = self._dense_next_leaf(node, byte + 1, path)
            else:
                start, end = self._sparse_span(node)
                if int(t.s_labels[start]) == 0:
                    value = self._sparse_leaf_value(start)
                    if not self._suffix_below(value, bound, depth):
                        return bytes(path), value
                target = byte + 1
                offset = int(
                    np.searchsorted(t.s_labels[start:end], np.uint16(target))
                )
                pos = start + offset
                descend = False
                if pos < end and int(t.s_labels[pos]) == target:
                    if t.s_haschild.get(pos):
                        descend = True
                    else:
                        value = self._sparse_leaf_value(pos)
                        if not self._suffix_below(value, bound, depth + 1):
                            path.append(byte)
                            return bytes(path), value
                if descend:
                    stack.append((kind, node, byte))
                    path.append(byte)
                    kind, node = self._sparse_child(pos)
                    depth += 1
                    continue
                result = self._sparse_next_leaf(node, byte + 1, path)
            if result is not None:
                return result
            # Backtrack: resume at the parent after the byte we followed.
            while stack:
                kind, node, byte = stack.pop()
                path.pop()
                if kind == _DENSE:
                    result = self._dense_next_leaf(node, byte + 1, path)
                else:
                    result = self._sparse_next_leaf(node, byte + 1, path)
                if result is not None:
                    return result
            return None

    def _dense_next_leaf(
        self, node: int, from_byte: int, path: bytearray
    ) -> tuple[bytes, int] | None:
        """Smallest leaf under ``node`` restricted to labels >= from_byte."""
        if from_byte > 255:
            return None
        t = self._trie
        flat = t.d_labels.next_set_bit(node * 256 + from_byte)
        if flat < 0 or flat >= (node + 1) * 256:
            return None
        byte = flat - node * 256
        if not t.d_haschild.get(flat):
            return bytes(path) + bytes([byte]), self._dense_leaf_value(node, byte)
        kind, child = self._dense_child(node, byte)
        branch = bytearray(path)
        branch.append(byte)
        return self._min_leaf(kind, child, branch)

    def _sparse_next_leaf(
        self, node: int, from_byte: int, path: bytearray
    ) -> tuple[bytes, int] | None:
        if from_byte > 255:
            return None
        t = self._trie
        start, end = self._sparse_span(node)
        offset = int(
            np.searchsorted(t.s_labels[start:end], np.uint16(from_byte + 1))
        )
        pos = start + offset
        if pos >= end:
            return None
        byte = int(t.s_labels[pos]) - 1
        if not t.s_haschild.get(pos):
            return bytes(path) + bytes([byte]), self._sparse_leaf_value(pos)
        kind, child = self._sparse_child(pos)
        branch = bytearray(path)
        branch.append(byte)
        return self._min_leaf(kind, child, branch)

    def _min_leaf(
        self, kind: int, node: int, path: bytearray
    ) -> tuple[bytes, int]:
        """Smallest leaf in the subtree rooted at ``(kind, node)``."""
        t = self._trie
        path = bytearray(path)
        while True:
            if kind == _DENSE:
                if t.d_isprefix.get(node):
                    return bytes(path), self._dense_prefix_value(node)
                flat = t.d_labels.next_set_bit(node * 256)
                byte = flat - node * 256
                if not t.d_haschild.get(flat):
                    path.append(byte)
                    return bytes(path), self._dense_leaf_value(node, byte)
                path.append(byte)
                kind, node = self._dense_child(node, byte)
            else:
                start, _ = self._sparse_span(node)
                label = int(t.s_labels[start])
                if label == 0:
                    return bytes(path), self._sparse_leaf_value(start)
                if not t.s_haschild.get(start):
                    path.append(label - 1)
                    return bytes(path), self._sparse_leaf_value(start)
                path.append(label - 1)
                kind, node = self._sparse_child(start)

    def iter_leaves(self):
        """Yield every stored (truncated) key prefix in sorted order.

        Structural depth-first walk — the basis of the iterator API; order
        equals the lexicographic order of the original keys.
        """
        kind, node = self._root()
        yield from self._iter_subtree(kind, node, bytearray())

    def _iter_subtree(self, kind: int, node: int, path: bytearray):
        t = self._trie
        if kind == _DENSE:
            if t.d_isprefix.get(node):
                yield bytes(path), self._dense_prefix_value(node)
            byte = 0
            while byte <= 255:
                flat = t.d_labels.next_set_bit(node * 256 + byte)
                if flat < 0 or flat >= (node + 1) * 256:
                    return
                byte = flat - node * 256
                path.append(byte)
                if t.d_haschild.get(flat):
                    child_kind, child = self._dense_child(node, byte)
                    yield from self._iter_subtree(child_kind, child, path)
                else:
                    yield bytes(path), self._dense_leaf_value(node, byte)
                path.pop()
                byte += 1
        else:
            start, end = self._sparse_span(node)
            for pos in range(start, end):
                label = int(t.s_labels[pos])
                if label == 0:
                    yield bytes(path), self._sparse_leaf_value(pos)
                    continue
                path.append(label - 1)
                if t.s_haschild.get(pos):
                    child_kind, child = self._sparse_child(pos)
                    yield from self._iter_subtree(child_kind, child, path)
                else:
                    yield bytes(path), self._sparse_leaf_value(pos)
                path.pop()

    # ------------------------------------------------------------------
    # serialization (structural: the trie itself, not the original keys)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the LOUDS-DS structure to the shared framed format.

        The header carries the trie geometry and per-bitvector bit counts
        (-1 marks an absent dense/sparse component); the payloads are the
        raw bitvector words, the sparse label array, and the suffix
        values.  A round-trip reconstructs every structure word bit for
        bit — no original keys are retained, matching real SuRF blocks.
        """
        from repro import serial

        t = self._trie
        vectors = {
            "d_labels": t.d_labels,
            "d_haschild": t.d_haschild,
            "d_leaf": t.d_leaf,
            "d_isprefix": t.d_isprefix,
            "s_haschild": t.s_haschild,
            "s_louds": t.s_louds,
        }
        header = {
            "num_keys": t.num_keys,
            "num_dense_nodes": t.num_dense_nodes,
            "num_dense_values": t.num_dense_values,
            "dense_to_sparse": t.dense_to_sparse,
            "cutoff_level": t.cutoff_level,
            "suffix_mode": t.suffix_mode,
            "suffix_bits": t.suffix_bits,
            "seed": self._seed,
            "bits": {
                name: (-1 if bv is None else bv.num_bits)
                for name, bv in vectors.items()
            },
        }
        payloads = [
            b"" if bv is None else bv.to_bytes() for bv in vectors.values()
        ]
        payloads.append(np.ascontiguousarray(t.s_labels, dtype=np.uint16).tobytes())
        payloads.append(np.ascontiguousarray(t.suffixes, dtype=np.uint64).tobytes())
        return serial.pack_frame(serial.KIND_SURF, header, *payloads)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SuRF":
        """Reconstruct a trie serialized with :meth:`to_bytes`.

        The restored filter is static (like any SuRF): it answers probes
        identically to the original but accepts no further keys.
        """
        from repro import serial

        header, payloads = serial.unpack_frame(
            data, expect_kind=serial.KIND_SURF
        )
        names = (
            "d_labels", "d_haschild", "d_leaf", "d_isprefix",
            "s_haschild", "s_louds",
        )
        if len(payloads) != len(names) + 2:
            raise serial.SerialError(
                f"SuRF frame carries {len(payloads)} payloads, expected "
                f"{len(names) + 2}"
            )
        bits = header["bits"]

        def vector(index: int, name: str) -> RankSelectBitVector | None:
            nbits = int(bits[name])
            if nbits < 0:
                return None
            return RankSelectBitVector.from_words_bytes(payloads[index], nbits)

        vectors = {name: vector(i, name) for i, name in enumerate(names)}
        trie = TrieData(
            num_keys=int(header["num_keys"]),
            num_dense_nodes=int(header["num_dense_nodes"]),
            d_labels=vectors["d_labels"],
            d_haschild=vectors["d_haschild"],
            d_leaf=vectors["d_leaf"],
            d_isprefix=vectors["d_isprefix"],
            num_dense_values=int(header["num_dense_values"]),
            s_labels=np.frombuffer(payloads[len(names)], dtype=np.uint16).copy(),
            s_haschild=vectors["s_haschild"],
            s_louds=vectors["s_louds"],
            dense_to_sparse=int(header["dense_to_sparse"]),
            cutoff_level=int(header["cutoff_level"]),
            suffix_mode=str(header["suffix_mode"]),
            suffix_bits=int(header["suffix_bits"]),
            suffixes=np.frombuffer(payloads[len(names) + 1], dtype=np.uint64).copy(),
        )
        surf = cls.__new__(cls)
        surf._seed = int(header["seed"])
        surf._trie = trie
        return surf

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        t = self._trie
        return (
            f"SuRF(keys={t.num_keys}, mode={t.suffix_mode}, "
            f"suffix_bits={t.suffix_bits}, bits={t.nominal_bits}, "
            f"dense_nodes={t.num_dense_nodes}, sparse_entries={t.s_labels.size})"
        )


class SuRFIterator:
    """Ordered iterator over a SuRF's stored (truncated) keys.

    Mirrors the real SuRF's iterator API: ``seek(key)`` positions at the
    first stored key whose extensions may be >= ``key``; ``next()`` advances
    in lexicographic order via a structural depth-first walk.  Yields the
    *stored prefixes* — truncated keys, the only information the filter
    retains.
    """

    def __init__(self, surf: SuRF) -> None:
        self._surf = surf
        self._walk = None
        self._current: bytes | None = None

    def seek(self, key: int | bytes) -> bytes | None:
        """Position at the successor of ``key``; returns its stored prefix."""
        data = _uint64_to_bytes(key) if isinstance(key, int) else key
        target = self._surf._successor_leaf(data)
        if target is None:
            self._walk = None
            self._current = None
            return None
        self._walk = self._surf.iter_leaves()
        for prefix, value_index in self._walk:
            if (prefix, value_index) == target:
                self._current = prefix
                return prefix
        self._walk = None  # pragma: no cover - successor always in the walk
        self._current = None
        return None

    def next(self) -> bytes | None:
        """Advance to the next stored key (None at the end)."""
        if self._walk is None:
            return None
        try:
            self._current, _ = next(self._walk)
        except StopIteration:
            self._walk = None
            self._current = None
        return self._current

    def __iter__(self):
        while self._current is not None:
            yield self._current
            self.next()


class SurfFilter:
    """Online facade over the static SuRF trie (the registry's ``"surf"`` kind).

    SuRF is built once from its full key set — it has no online insert.
    This facade gives it the uniform :class:`repro.api.RangeFilter`
    surface anyway: ``insert``/``insert_many`` buffer keys, and the trie
    is (re)built lazily on the first probe after a mutation.  Probe
    answers are bit-identical to building a :class:`SuRF` over the same
    keys directly (construction is deterministic), which is what the old
    per-filter LSM policy did.

    ``bits_per_key=None`` builds with an explicit ``suffix_bits``;
    otherwise :meth:`SuRF.tuned_uint64` picks the largest suffix length
    that fits the budget.  ``to_bytes`` serializes the *built trie*
    (structural, no keys retained); a frame loads back as a plain static
    :class:`SuRF`.
    """

    def __init__(
        self,
        bits_per_key: float | None = None,
        suffix_mode: str = SUFFIX_REAL,
        suffix_bits: int = 8,
        dense_ratio: int = 64,
        seed: int = 0x50F1,
    ) -> None:
        self.bits_per_key = bits_per_key
        self.suffix_mode = suffix_mode
        self.suffix_bits = suffix_bits
        self.dense_ratio = dense_ratio
        self.seed = seed
        self._chunks: list[np.ndarray] = []
        self._num_keys = 0
        self._surf: SuRF | None = None

    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        self.insert_many(np.array([key], dtype=np.uint64))

    def insert_many(self, keys: np.ndarray) -> None:
        """Buffer a key batch; the trie rebuilds on the next probe."""
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        if keys.size == 0:
            return
        self._chunks.append(keys.copy())
        self._num_keys += int(keys.size)
        self._surf = None

    def _built(self) -> SuRF:
        if self._surf is None:
            keys = (
                np.concatenate(self._chunks)
                if self._chunks
                else np.zeros(0, dtype=np.uint64)
            )
            if self.bits_per_key is not None:
                self._surf = SuRF.tuned_uint64(
                    keys,
                    bits_per_key=self.bits_per_key,
                    suffix_mode=self.suffix_mode,
                    dense_ratio=self.dense_ratio,
                    seed=self.seed,
                )
            else:
                self._surf = SuRF.from_uint64(
                    keys,
                    suffix_mode=self.suffix_mode,
                    suffix_bits=self.suffix_bits,
                    dense_ratio=self.dense_ratio,
                    seed=self.seed,
                )
        return self._surf

    # ------------------------------------------------------------------
    # An empty key set has no trie (the builder refuses it) but the exact
    # answers are trivial: nothing is stored, so every probe is False.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def size_bits(self) -> int:
        if self._num_keys == 0:
            return 0
        return self._built().size_bits

    def contains_point(self, key: int | bytes) -> bool:
        if self._num_keys == 0:
            return False
        return self._built().contains_point(key)

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        if self._num_keys == 0:
            return np.zeros(np.asarray(keys).size, dtype=bool)  # repro-lint: ignore[dtype-discipline] -- size only; the key values are never read
        return self._built().contains_point_many(keys)

    __contains__ = contains_point

    def contains_range(self, l_key: int | bytes, r_key: int | bytes) -> bool:
        if self._num_keys == 0:
            if not isinstance(l_key, bytes) and l_key > r_key:
                raise ValueError(f"empty query range [{l_key}, {r_key}]")
            return False
        return self._built().contains_range(l_key, r_key)

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        if self._num_keys == 0:
            return np.zeros(np.asarray(bounds).shape[0], dtype=bool)  # repro-lint: ignore[dtype-discipline] -- shape only; the bounds values are never read
        return self._built().contains_range_many(bounds)

    def to_bytes(self) -> bytes:
        """Serialize the built trie (see :meth:`SuRF.to_bytes`)."""
        if self._num_keys == 0:
            raise ValueError("an empty SuRF has no serialized trie form")
        return self._built().to_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        built = "built" if self._surf is not None else "pending"
        return f"SurfFilter(keys={self._num_keys}, {built})"
