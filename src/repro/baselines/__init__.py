"""Baseline filters from the paper's evaluation.

Every structure bloomRF is compared against in Sect. 9:

* :class:`BloomFilter` — the standard point filter (RocksDB/LevelDB styles),
* :class:`PrefixBloomFilter` — BF over fixed-length key prefixes,
* :class:`FencePointers` — min/max per block (ZoneMaps / BRIN),
* :class:`CuckooFilter` — Fan et al., used in the Fig. 12.E comparison,
* :class:`Rosetta` — hierarchical per-level BFs with doubting (Luo et al.),
* :class:`SuRF` — the fast succinct trie (Zhang et al.).
"""

from repro.baselines.bloom import BloomFilter
from repro.baselines.cuckoo import CuckooFilter
from repro.baselines.fence import FencePointers
from repro.baselines.prefix_bloom import PrefixBloomFilter
from repro.baselines.rosetta import Rosetta
from repro.baselines.surf import SuRF, SurfFilter

__all__ = [
    "BloomFilter",
    "PrefixBloomFilter",
    "FencePointers",
    "CuckooFilter",
    "Rosetta",
    "SuRF",
    "SurfFilter",
]
