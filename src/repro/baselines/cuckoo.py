"""Cuckoo filter (Fan et al. [17]) — point-filter baseline of Fig. 12.E.

Partial-key cuckoo hashing with 4-slot buckets: each key stores an ``f``-bit
fingerprint in one of two buckets; the alternate bucket is derived from the
fingerprint itself, so relocation never needs the original key.  The paper
compares point-query FPR across fingerprint sizes at high (95 %) occupancy.
Supports deletion (the capability Bloom filters lack).
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import (
    bulk_point_eval,
    ceil_div,
    check_bounds_rows,
    is_power_of_two,
)
from repro.hashing import splitmix64

__all__ = ["CuckooFilter"]

_SLOTS_PER_BUCKET = 4
_MAX_KICKS = 500


class CuckooFilter:
    """Cuckoo filter with 4-way buckets and parametric fingerprint width."""

    def __init__(
        self,
        n_keys: int,
        fingerprint_bits: int = 12,
        load_factor: float = 0.95,
        seed: int = 0xC0C0,
    ) -> None:
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        if not 1 <= fingerprint_bits <= 32:
            raise ValueError(
                f"fingerprint_bits must be in [1, 32], got {fingerprint_bits}"
            )
        if not 0 < load_factor <= 1:
            raise ValueError(f"load_factor must be in (0, 1], got {load_factor}")
        self.fingerprint_bits = fingerprint_bits
        self.seed = seed
        needed_buckets = ceil_div(
            math.ceil(n_keys / load_factor), _SLOTS_PER_BUCKET
        )
        # A handful of buckets degenerates partial-key cuckoo hashing (the
        # alternate bucket collapses onto the primary); keep at least 8.
        self.num_buckets = max(_next_power_of_two(needed_buckets), 8)
        # Slot value 0 means empty; fingerprints are forced non-zero.
        self._table = np.zeros(
            (self.num_buckets, _SLOTS_PER_BUCKET), dtype=np.uint32
        )
        self._num_keys = 0
        self._rng_state = seed

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def size_bits(self) -> int:
        """Occupied size: ``buckets * 4 * f`` bits (table payload)."""
        return self.num_buckets * _SLOTS_PER_BUCKET * self.fingerprint_bits

    def load(self) -> float:
        return self._num_keys / (self.num_buckets * _SLOTS_PER_BUCKET)

    def expected_fpr(self) -> float:
        """``~ 8 / 2^f`` at full 4-way occupancy (Fan et al.)."""
        return min(1.0, 2 * _SLOTS_PER_BUCKET / (1 << self.fingerprint_bits))

    # ------------------------------------------------------------------
    def _fingerprint(self, key: int) -> int:
        fp = splitmix64(key, seed=self.seed + 1) & ((1 << self.fingerprint_bits) - 1)
        return fp if fp else 1

    def _index1(self, key: int) -> int:
        return splitmix64(key, seed=self.seed) & (self.num_buckets - 1)

    def _alt_index(self, index: int, fingerprint: int) -> int:
        return (index ^ splitmix64(fingerprint, seed=self.seed + 2)) & (
            self.num_buckets - 1
        )

    def _bucket_insert(self, index: int, fingerprint: int) -> bool:
        row = self._table[index]
        for slot in range(_SLOTS_PER_BUCKET):
            if row[slot] == 0:
                row[slot] = fingerprint
                return True
        return False

    # ------------------------------------------------------------------
    def insert(self, key: int) -> bool:
        """Insert; returns False if the filter is too full (insert failed)."""
        fp = self._fingerprint(key)
        i1 = self._index1(key)
        i2 = self._alt_index(i1, fp)
        if self._bucket_insert(i1, fp) or self._bucket_insert(i2, fp):
            self._num_keys += 1
            return True
        # Kick a random victim back and forth (partial-key cuckoo hashing).
        index = i1 if self._next_random() & 1 else i2
        for _ in range(_MAX_KICKS):
            slot = self._next_random() % _SLOTS_PER_BUCKET
            fp, self._table[index][slot] = int(self._table[index][slot]), fp
            index = self._alt_index(index, fp)
            if self._bucket_insert(index, fp):
                self._num_keys += 1
                return True
        return False

    def insert_many(self, keys: np.ndarray) -> int:
        """Insert a batch; returns how many inserts succeeded."""
        inserted = 0
        for key in np.asarray(keys, dtype=np.uint64):
            inserted += self.insert(int(key))
        return inserted

    def contains_point(self, key: int) -> bool:
        fp = self._fingerprint(key)
        i1 = self._index1(key)
        if fp in self._table[i1]:
            return True
        i2 = self._alt_index(i1, fp)
        return fp in self._table[i2]

    __contains__ = contains_point

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Bulk point probe (uniform interface; the table walk is scalar)."""
        return bulk_point_eval(self.contains_point, keys)

    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Conservative range probe: always "maybe" (True).

        Like the Bloom baseline, a fingerprint table cannot prune ranges;
        exposed so the cuckoo filter satisfies the uniform
        :class:`repro.api.RangeFilter` protocol (sound, never a false
        negative).
        """
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        return True

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Bulk form of :meth:`contains_range`: all-True per query row."""
        return np.ones(check_bounds_rows(bounds).shape[0], dtype=bool)

    def delete(self, key: int) -> bool:
        """Remove one copy of ``key``; returns whether anything was removed."""
        fp = self._fingerprint(key)
        i1 = self._index1(key)
        for index in (i1, self._alt_index(i1, fp)):
            row = self._table[index]
            for slot in range(_SLOTS_PER_BUCKET):
                if row[slot] == fp:
                    row[slot] = 0
                    self._num_keys -= 1
                    return True
        return False

    def _next_random(self) -> int:
        self._rng_state = splitmix64(self._rng_state)
        return self._rng_state

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the shared framed format (see :mod:`repro.serial`).

        The header carries the geometry plus the kick-RNG state (so a
        restored filter continues the same deterministic eviction
        sequence); the payload is the raw fingerprint table.
        """
        from repro import serial

        return serial.pack_frame(
            serial.KIND_CUCKOO,
            {
                "fingerprint_bits": self.fingerprint_bits,
                "num_buckets": self.num_buckets,
                "seed": self.seed,
                "num_keys": self._num_keys,
                "rng_state": self._rng_state,
            },
            self._table.tobytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "CuckooFilter":
        """Reconstruct a filter serialized with :meth:`to_bytes`."""
        from repro import serial

        header, payloads = serial.unpack_frame(
            data, expect_kind=serial.KIND_CUCKOO
        )
        if len(payloads) != 1:
            raise serial.SerialError(
                f"cuckoo frame carries {len(payloads)} payloads, expected 1"
            )
        filt = cls.__new__(cls)
        filt.fingerprint_bits = int(header["fingerprint_bits"])
        filt.num_buckets = int(header["num_buckets"])
        filt.seed = int(header["seed"])
        filt._num_keys = int(header["num_keys"])
        filt._rng_state = int(header["rng_state"])
        table = np.frombuffer(payloads[0], dtype=np.uint32)
        if table.size != filt.num_buckets * _SLOTS_PER_BUCKET:
            raise serial.SerialError(
                f"cuckoo table payload holds {table.size} slots, expected "
                f"{filt.num_buckets * _SLOTS_PER_BUCKET}"
            )
        filt._table = table.reshape(filt.num_buckets, _SLOTS_PER_BUCKET).copy()
        return filt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CuckooFilter(buckets={self.num_buckets}, f={self.fingerprint_bits}, "
            f"keys={self._num_keys}, load={self.load():.2f})"
        )


def _next_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    if is_power_of_two(value):
        return value
    return 1 << value.bit_length()
