"""Rosetta (Luo et al., SIGMOD 2020 [29]) — the dyadic point-range baseline.

Rosetta maintains one Bloom filter per dyadic level ``0..L`` (``L = log2 R``,
the largest supported query range).  Inserting a key inserts its prefix on
every level; a range query decomposes the interval into at most ``2L``
maximal DIs (Sect. 2) and probes each with *doubting*: a positive DI on
level ``l`` is only believed after recursively confirming one of its two
children, down to level 0.  This gives Rosetta its excellent small-range FPR
and its ``O(log R)``-to-``O(R)`` probe cost (Sect. 6 of the bloomRF paper).

Variants implemented (Sect. 6):

* ``first_cut``  — (F): bottom level sized for the target FPR, all upper
  levels sized for FPR ``1/(2 - eps)`` (~0.5, i.e. ~1.44 bits/key).
* ``single_level`` — (S): only the bottom BF; range queries probe every key
  in the interval (linear time).
* ``tuned`` — (O)-style: a fixed total budget is split by giving every upper
  level its ~1.44 bits/key survival ration and the bottom level the rest;
  when the budget cannot feed all ``L`` levels the upper allocation shrinks,
  degrading long-range FPR first — reproducing the behaviour the paper
  reports for Rosetta under small budgets / large ranges.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import bulk_range_eval
from repro.baselines.bloom import BloomFilter, bits_for_fpr
from repro.dyadic import dyadic_decompose

__all__ = ["Rosetta"]

# Bits/key that keep an upper-level BF at ~50% FPR (ln2-scaled single hash).
_UPPER_LEVEL_BITS_PER_KEY = 1.44
# An upper level below this allocation is useless (FPR ~ 1); the tuner drops
# levels it cannot afford instead, like Rosetta's variant switching.
_MIN_UPPER_BITS_PER_KEY = 0.7
# Probe budget per range query before answering a sound "maybe" (bounds the
# worst-case O(R) doubting walk the paper describes).
_MAX_PROBES = 1 << 9


class Rosetta:
    """Hierarchical Bloom filters over dyadic prefixes, with doubting."""

    def __init__(
        self,
        n_keys: int,
        level_bits: dict[int, int],
        domain_bits: int = 64,
        seed: int = 0x0E77A,
    ) -> None:
        if n_keys <= 0:
            raise ValueError(f"n_keys must be positive, got {n_keys}")
        if 0 not in level_bits:
            raise ValueError("Rosetta requires a level-0 (point) Bloom filter")
        self.domain_bits = domain_bits
        self.n_keys = n_keys
        self.max_level = max(level_bits)
        self._filters: dict[int, BloomFilter] = {}
        for level, bits in sorted(level_bits.items()):
            if not 0 <= level <= domain_bits:
                raise ValueError(f"level {level} outside domain of {domain_bits} bits")
            self._filters[level] = BloomFilter(
                n_keys=n_keys,
                bits_per_key=max(bits / n_keys, 0.5),
                style="optimal",
                seed=seed + level,
            )
        self._num_keys = 0
        self.last_probe_count = 0

    # ------------------------------------------------------------------
    # constructors / tuning
    # ------------------------------------------------------------------
    @classmethod
    def first_cut(
        cls,
        n_keys: int,
        target_fpr: float,
        max_range: int,
        domain_bits: int = 64,
        seed: int = 0x0E77A,
    ) -> "Rosetta":
        """Variant (F): FPR ``eps`` at level 0, ``1/(2-eps)`` above."""
        max_level = min(domain_bits, max(1, math.ceil(math.log2(max(max_range, 2)))))
        upper_fpr = 1.0 / (2.0 - target_fpr)
        level_bits = {0: bits_for_fpr(n_keys, target_fpr)}
        for level in range(1, max_level + 1):
            level_bits[level] = bits_for_fpr(n_keys, upper_fpr)
        return cls(n_keys, level_bits, domain_bits=domain_bits, seed=seed)

    @classmethod
    def single_level(
        cls,
        n_keys: int,
        bits_per_key: float,
        domain_bits: int = 64,
        seed: int = 0x0E77A,
    ) -> "Rosetta":
        """Variant (S): one point BF; ranges probed key by key."""
        return cls(
            n_keys,
            {0: int(n_keys * bits_per_key)},
            domain_bits=domain_bits,
            seed=seed,
        )

    @classmethod
    def tuned(
        cls,
        n_keys: int,
        bits_per_key: float,
        max_range: int,
        domain_bits: int = 64,
        seed: int = 0x0E77A,
    ) -> "Rosetta":
        """Budget-driven allocation ((O)-style heuristic, see module doc)."""
        total_bits = int(n_keys * bits_per_key)
        max_level = min(domain_bits, max(1, math.ceil(math.log2(max(max_range, 2)))))
        # Drop levels the budget cannot feed (an upper BF below ~0.7 b/k is
        # pure noise): Rosetta then serves larger ranges only via many small
        # pieces, degrading exactly as the paper's Problem 1 describes.
        affordable = int(
            (total_bits // 4) / max(_MIN_UPPER_BITS_PER_KEY * n_keys, 1)
        )
        max_level = max(1, min(max_level, affordable))
        # Bottom-heavy split, mimicking the published (V) weighting: upper
        # levels get their ~1.44 bits/key survival ration only while that
        # costs at most a quarter of the budget; the precise bottom filter —
        # which doubting funnels every decision through — takes the rest.
        upper_each = int(_UPPER_LEVEL_BITS_PER_KEY * n_keys)
        upper_budget = min(max_level * upper_each, total_bits // 4)
        upper_each = max(upper_budget // max_level, n_keys // 4) if max_level else 0
        level_bits = {0: max(total_bits - max_level * upper_each, n_keys)}
        for level in range(1, max_level + 1):
            level_bits[level] = upper_each
        return cls(n_keys, level_bits, domain_bits=domain_bits, seed=seed)

    # ------------------------------------------------------------------
    @property
    def size_bits(self) -> int:
        return sum(f.size_bits for f in self._filters.values())

    @property
    def levels(self) -> list[int]:
        return sorted(self._filters)

    def __len__(self) -> int:
        return self._num_keys

    # ------------------------------------------------------------------
    def insert(self, key: int) -> None:
        for level, filt in self._filters.items():
            filt.insert(key >> level)
        self._num_keys += 1

    def insert_many(self, keys: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        for level, filt in self._filters.items():
            filt.insert_many(keys >> np.uint64(level))
        self._num_keys += int(keys.size)

    def contains_point(self, key: int) -> bool:
        """Point probe: the precise bottom filter decides."""
        return self._filters[0].contains_point(key)

    def contains_point_many(self, keys: np.ndarray) -> np.ndarray:
        """Bulk point probe: one vectorized pass over the bottom filter."""
        return self._filters[0].contains_point_many(
            np.asarray(keys, dtype=np.uint64)
        )

    __contains__ = contains_point

    # ------------------------------------------------------------------
    def contains_range(self, l_key: int, r_key: int) -> bool:
        """Dyadic decomposition + doubting (Rosetta's range query)."""
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        self.last_probe_count = 0
        pieces = _bounded_decompose(l_key, r_key, self.max_level)
        if pieces is None:
            return True  # range far beyond the tuned budget: sound "maybe"
        for level, prefix in pieces:
            result = self._doubt(level, prefix)
            if result is None:
                return True  # probe budget exhausted mid-doubt
            if result:
                return True
        return False

    def contains_range_many(self, bounds: np.ndarray) -> np.ndarray:
        """Bulk range probe over an ``(n, 2)`` array of inclusive bounds.

        Rosetta's doubting recursion is inherently sequential, so this is a
        uniform bulk interface (one scalar probe per row), not a fast path.
        """
        return bulk_range_eval(self.contains_range, bounds)

    def _doubt(self, level: int, prefix: int) -> bool | None:
        """Recursively confirm a positive DI down to level 0.

        Returns True/False, or None when the probe budget is exhausted
        (treated as a positive by the caller — soundness is preserved).
        """
        self.last_probe_count += 1
        if self.last_probe_count > _MAX_PROBES:
            return None
        filt = self._filters.get(level)
        if filt is not None and not filt.contains_point(prefix):
            return False
        if level == 0:
            return True
        left = self._doubt(level - 1, prefix << 1)
        if left is None or left:
            return left
        return self._doubt(level - 1, (prefix << 1) | 1)

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the shared framed format (see :mod:`repro.serial`).

        The header carries the level list and key counts; each level's
        Bloom filter nests as one payload frame in level order, so a
        round-trip reconstructs every per-level storage word bit for bit.
        """
        from repro import serial

        return serial.pack_frame(
            serial.KIND_ROSETTA,
            {
                "domain_bits": self.domain_bits,
                "n_keys": self.n_keys,
                "num_keys": self._num_keys,
                "max_level": self.max_level,
                "levels": self.levels,
            },
            *[self._filters[level].to_bytes() for level in self.levels],
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Rosetta":
        """Reconstruct a filter serialized with :meth:`to_bytes`."""
        from repro import serial

        header, payloads = serial.unpack_frame(
            data, expect_kind=serial.KIND_ROSETTA
        )
        levels = [int(level) for level in header["levels"]]
        if len(payloads) != len(levels):
            raise serial.SerialError(
                f"Rosetta frame carries {len(payloads)} payloads for "
                f"{len(levels)} levels"
            )
        filt = cls.__new__(cls)
        filt.domain_bits = int(header["domain_bits"])
        filt.n_keys = int(header["n_keys"])
        filt.max_level = int(header["max_level"])
        filt._filters = {
            level: BloomFilter.from_bytes(blob)
            for level, blob in zip(levels, payloads, strict=True)
        }
        filt._num_keys = int(header["num_keys"])
        filt.last_probe_count = 0
        return filt

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Rosetta(levels=0..{self.max_level}, bits={self.size_bits}, "
            f"keys={self._num_keys})"
        )


def _bounded_decompose(
    l_key: int, r_key: int, max_level: int
) -> list[tuple[int, int]] | None:
    """Decomposition capped at ``max_level``; None if it would explode.

    Capping the level means a query much longer than the tuned ``R`` breaks
    into ``~range/2**max_level`` pieces; Rosetta cannot serve those
    efficiently (the paper's Problem 1), so we bail out conservatively once
    the piece count exceeds the probe budget.
    """
    if (r_key - l_key + 1) >> max_level > _MAX_PROBES:
        return None
    pieces = dyadic_decompose(l_key, r_key, max_level=max_level)
    if len(pieces) > _MAX_PROBES:
        return None
    return pieces
