"""Fence pointers / min-max indices (ZoneMaps [34], BRIN [38]).

The simplest range-capable baseline: the key space of each data block is
summarized by its ``[min, max]``.  A range query reports the blocks whose key
span intersects it; a point query reports the blocks whose span contains the
key.  Precision is limited by block-level granularity, which is why fence
pointers lose to PRFs on point and small-range queries (Fig. 9.D) while
remaining cheap and exact at block granularity.
"""

from __future__ import annotations

import bisect

import numpy as np

__all__ = ["FencePointers"]


class FencePointers:
    """Sorted-run min/max index with binary-searched probes."""

    def __init__(self, block_size: int = 128) -> None:
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self._mins: list[int] = []
        self._maxs: list[int] = []
        self._num_keys = 0

    @classmethod
    def build(
        cls,
        sorted_keys: np.ndarray,
        block_size: int = 128,
        *,
        presorted: bool = False,
    ) -> "FencePointers":
        """Build from a sorted key array, one fence per ``block_size`` keys.

        ``presorted=True`` skips the sortedness re-check for callers that
        already validated it (``SSTable`` does on construction) — on the
        store reopen path that check would otherwise touch every key a
        second time.
        """
        fences = cls(block_size=block_size)
        keys = np.asarray(sorted_keys, dtype=np.uint64)
        if not presorted and keys.size and np.any(keys[1:] < keys[:-1]):
            raise ValueError("FencePointers.build requires sorted keys")
        if keys.size:
            # Gather-index the block bounds instead of looping per block:
            # the mins sit at each block start, the maxs one key before the
            # next start (or at the final key).
            starts = np.arange(0, keys.size, block_size)
            ends = np.minimum(starts + block_size, keys.size) - 1
            fences._mins = keys[starts].tolist()
            fences._maxs = keys[ends].tolist()
        fences._num_keys = int(keys.size)
        return fences

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def num_blocks(self) -> int:
        return len(self._mins)

    @property
    def size_bits(self) -> int:
        """Two 64-bit bounds per block."""
        return 128 * self.num_blocks

    # ------------------------------------------------------------------
    def blocks_for_point(self, key: int) -> list[int]:
        """Indices of blocks whose [min, max] contains ``key``."""
        # Blocks are sorted and non-overlapping for a sorted run; at most one
        # block matches, found by binary search over the block minima.
        idx = bisect.bisect_right(self._mins, key) - 1
        if idx >= 0 and self._mins[idx] <= key <= self._maxs[idx]:
            return [idx]
        return []

    def blocks_for_range(self, l_key: int, r_key: int) -> list[int]:
        """Indices of blocks intersecting ``[l_key, r_key]``."""
        if l_key > r_key:
            raise ValueError(f"empty query range [{l_key}, {r_key}]")
        first = bisect.bisect_right(self._maxs, l_key - 1) if l_key else 0
        out = []
        for idx in range(first, self.num_blocks):
            if self._mins[idx] > r_key:
                break
            out.append(idx)
        return out

    def contains_point(self, key: int) -> bool:
        return bool(self.blocks_for_point(key))

    def contains_range(self, l_key: int, r_key: int) -> bool:
        return bool(self.blocks_for_range(l_key, r_key))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FencePointers(blocks={self.num_blocks}, "
            f"block_size={self.block_size}, keys={self._num_keys})"
        )
