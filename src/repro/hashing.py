"""Hash primitives shared by every filter.

The package standardizes on the SplitMix64 finalizer as its mixing function:
it is cheap, passes the usual avalanche tests, and — crucially for this
reproduction — is easy to express both as scalar Python-int arithmetic (used
on the per-query hot path) and as vectorized NumPy ``uint64`` arithmetic
(used for bulk inserts and bulk probes).  Both forms compute bit-identical
results, which the test suite asserts.

Double hashing (Kirsch & Mitzenmacher [23 in the paper]) is provided for the
RocksDB/LevelDB-style Bloom-filter baselines, which derive all ``k`` probe
positions from two base hashes.
"""

from __future__ import annotations

import numpy as np

from repro._util import MASK64

__all__ = [
    "splitmix64",
    "splitmix64_array",
    "HashFamily",
    "double_hash_positions",
    "double_hash_positions_array",
    "pmhf_position",
]

_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(value: int, seed: int = 0) -> int:
    """SplitMix64 finalizer of ``value`` (scalar Python ints, 64-bit wrap)."""
    z = (value + seed * _GOLDEN + _GOLDEN) & MASK64
    z = ((z ^ (z >> 30)) * _C1) & MASK64
    z = ((z ^ (z >> 27)) * _C2) & MASK64
    return z ^ (z >> 31)


def splitmix64_array(values: np.ndarray, seed: int = 0) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a ``uint64`` array."""
    z = values.astype(np.uint64, copy=True)
    z += np.uint64((seed * _GOLDEN + _GOLDEN) & MASK64)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_C1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_C2)
    return z ^ (z >> np.uint64(31))


def splitmix64_multi_seed(values: np.ndarray, seeds: np.ndarray) -> np.ndarray:
    """:func:`splitmix64` with a *per-element* seed array.

    Computes bit-identical results to ``splitmix64(values[i], seeds[i])``
    element-wise; used to hash one key through every (layer, replica) hash
    function in a single vector operation.
    """
    z = values.astype(np.uint64, copy=True)
    z += seeds * np.uint64(_GOLDEN) + np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_C1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_C2)
    return z ^ (z >> np.uint64(31))


class HashFamily:
    """A family of independent 64-bit hash functions ``h_0 .. h_{k-1}``.

    Each member is a SplitMix64 finalizer with a distinct derived seed, so the
    family behaves like independently drawn hash functions.  A ``HashFamily``
    is deterministic for a given ``base_seed`` — filters built with the same
    seed are reproducible bit for bit (this also makes serialization trivial:
    only the seed needs to be stored).
    """

    __slots__ = ("base_seed", "_seeds")

    def __init__(self, num_functions: int, base_seed: int = 0x5EED) -> None:
        if num_functions <= 0:
            raise ValueError(f"need at least one hash function, got {num_functions}")
        self.base_seed = base_seed
        # Derive decorrelated per-function seeds from the base seed.
        self._seeds = [splitmix64(i, seed=base_seed) for i in range(num_functions)]

    def __len__(self) -> int:
        return len(self._seeds)

    @property
    def seeds(self) -> list[int]:
        """The derived per-function seeds (read-only view)."""
        return list(self._seeds)

    def hash(self, index: int, value: int) -> int:
        """Apply member ``index`` to ``value`` (full 64-bit output)."""
        return splitmix64(value, seed=self._seeds[index])

    def hash_mod(self, index: int, value: int, modulus: int) -> int:
        """Member ``index`` reduced to ``[0, modulus)``."""
        return splitmix64(value, seed=self._seeds[index]) % modulus

    def hash_array(self, index: int, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`hash` over a ``uint64`` array."""
        return splitmix64_array(values, seed=self._seeds[index])

    def hash_mod_array(
        self, index: int, values: np.ndarray, modulus: int
    ) -> np.ndarray:
        """Vectorized :meth:`hash_mod` over a ``uint64`` array."""
        return self.hash_array(index, values) % np.uint64(modulus)


def double_hash_positions(key: int, k: int, num_bits: int, seed: int = 0) -> list[int]:
    """``k`` probe positions via double hashing (LevelDB/RocksDB style).

    ``position_i = (h1 + i * h2) mod num_bits`` with ``h2`` forced odd so the
    probe sequence cycles through the whole array.
    """
    h1 = splitmix64(key, seed=seed)
    h2 = splitmix64(key, seed=seed + 1) | 1
    return [((h1 + i * h2) & MASK64) % num_bits for i in range(k)]


def double_hash_positions_array(
    keys: np.ndarray, k: int, num_bits: int, seed: int = 0
) -> np.ndarray:
    """Vectorized :func:`double_hash_positions`: shape ``(k, len(keys))``."""
    keys = keys.astype(np.uint64, copy=False)
    h1 = splitmix64_array(keys, seed=seed)
    h2 = splitmix64_array(keys, seed=seed + 1) | np.uint64(1)
    out = np.empty((k, keys.size), dtype=np.uint64)
    m = np.uint64(num_bits)
    for i in range(k):
        out[i] = (h1 + np.uint64(i) * h2) % m
    return out


def pmhf_position(
    base_hash, key: int, level: int, delta: int, num_words: int
) -> int:
    """Piecewise-monotone hash position (Sect. 3.2), hash-agnostic form.

    ``MH(x) = (h(x >> (level + delta - 1)) mod num_words) * 2**(delta-1)
              + ((x >> level) & (2**(delta-1) - 1))``

    ``base_hash`` is any integer hash ``h``.  This pure helper exists so the
    paper's worked example (Fig. 4, with ``h(x) = a + b*x``) can be verified
    bit for bit in the tests; :class:`repro.core.bloomrf.BloomRF` inlines the
    same arithmetic with SplitMix64 hashes.
    """
    word_bits = 1 << (delta - 1)
    word_index = base_hash(key >> (level + delta - 1)) % num_words
    return word_index * word_bits + ((key >> level) & (word_bits - 1))
