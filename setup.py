"""Legacy-editable-install shim (environments without the `wheel` package)."""
from setuptools import setup

setup()
