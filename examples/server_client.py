#!/usr/bin/env python3
"""Serving-layer tour: one store, many concurrent clients, one server.

``repro.server`` puts an asyncio TCP front-end over any
``open_store(...)`` handle.  The wire protocol is a u32 little-endian
length prefix followed by one JSON object (values base64); the server
answers requests out of order, matched by client-chosen ``id``.

The interesting part is what happens *between* the socket and the
engine: the event loop only parses frames, every engine call runs on a
single executor thread, and each tick drains ALL requests that arrived
while the previous tick executed — merging adjacent same-kind
operations into one vectorized ``get_many`` / ``put_many`` sweep and
acknowledging a whole write group at a single WAL group-commit
barrier.  Concurrency becomes batch size, and an ack still means "on
disk" under ``wal_sync="batch"``.

This script starts a server on an ephemeral port in-process, drives it
with the blocking client, then hammers it with concurrent asyncio
clients and prints the server's coalescing accounting.

Run: ``python examples/server_client.py``
"""

import asyncio
import concurrent.futures
import shutil
import tempfile
import threading
from pathlib import Path

from repro import FilterSpec, open_store
from repro.server import AsyncStoreClient, StoreClient, StoreServer


async def serve(db, ready, stop):
    server = StoreServer(db, port=0)        # 0 = ephemeral port
    await server.start()
    ready.set_result(server.address)        # thread-safe Future
    await stop.wait()
    await server.aclose()                   # drain in-flight, flush the store
    return server.info()


async def hammer(host, port, n_clients=8, per_client=40):
    async def one(cid):
        async with await AsyncStoreClient.connect(host, port) as c:
            base = 1_000_000 * (cid + 1)
            # Fire without awaiting in between: the requests pipeline, so
            # the server's next tick coalesces them into one sweep each.
            await asyncio.gather(*[
                c.put_many([base + i for i in range(j * 5, j * 5 + 5)])
                for j in range(per_client // 5)
            ])
            hits = await c.get_many([base, base + 1, base + 2])
            assert hits == [True, True, True]

    await asyncio.gather(*[one(cid) for cid in range(n_clients)])


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="bloomrf-serve-"))
    spec = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})

    loop = asyncio.new_event_loop()
    runner = threading.Thread(target=loop.run_forever, daemon=True)
    runner.start()

    with open_store(
        path=root / "db", filter=spec, memtable_capacity=1 << 12,
        store_values=True, wal_sync="batch", wal_group_commit=64,
    ) as db:
        ready = concurrent.futures.Future()
        stop = asyncio.Event()
        done = asyncio.run_coroutine_threadsafe(serve(db, ready, stop), loop)
        host, port = ready.result(timeout=10)
        print(f"serving {root / 'db'} on {host}:{port}")

        # -------------------------------------------------------------
        # 1. The blocking client: every store operation over the wire.
        # -------------------------------------------------------------
        with StoreClient(host, port) as c:
            assert c.ping()
            c.put(7, b"seven")                    # acked => WAL-durable
            c.put_many([10, 11, 12], [b"a", b"b", b"c"])
            c.delete(11)
            print("get_many([7, 10, 11, 12]) =", c.get_many([7, 10, 11, 12]))
            print("get_value(7) =", c.get_value(7))
            print("may_contain(999) =", c.may_contain(999))
            print("scan_nonempty(10, 12) =", c.scan_nonempty(10, 12))
            print("scan_range(0, 100) =", c.scan_range(0, 100, limit=10))
            stats = c.stats()
            print(f"server-side stats: {stats['num_keys']} keys, "
                  f"{stats['counters']['filter_probes']} filter probes")

        # -------------------------------------------------------------
        # 2. Concurrency -> batch size: 8 async clients pipeline writes,
        #    and the coalescer merges them into a few vectorized sweeps
        #    with one group-commit barrier per write-carrying tick.
        # -------------------------------------------------------------
        asyncio.run(hammer(host, port))

        loop.call_soon_threadsafe(stop.set)
        info = done.result(timeout=30)
        print(f"served {info['requests']} requests over "
              f"{info['connections']} connections: "
              f"{info['coalesced_ops']} ops in {info['ticks']} ticks "
              f"(mean {info['mean_tick_ops']:.1f} ops/tick, "
              f"max {info['max_tick_ops']}), "
              f"{info['engine_calls']} engine calls, "
              f"{info['barriers']} ack barriers")

    loop.call_soon_threadsafe(loop.stop)
    runner.join(10)
    loop.close()

    # The server flushed on close; a reopen sees every acknowledged write.
    with open_store(path=root / "db") as db:
        assert db.get_value(7) == b"seven"
        print(f"reopened store holds {db.num_keys} keys — acks were durable")

    shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
