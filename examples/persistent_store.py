#!/usr/bin/env python3
"""Persistent on-disk store walkthrough: create, ingest, crash, reopen.

``open_store(path=...)`` backs the LSM engines with a directory of
versioned ``repro.serial`` frames: a store manifest, a write-ahead log,
plus per-run SST and filter-block files (per shard when sharded).
Closing and reopening the store changes no answer — filter blocks are
deserialized, never rebuilt — and every *acknowledged* write survives a
crash: it reaches the log before the memtable, so reopening after a
``kill -9`` replays it.

This store is opened with ``compaction="size-tiered"``: background
workers merge similar-sized runs whenever a flush trips the policy, so
the run count stays bounded under a sustained write burst without any
foreground ``compact()`` call — and without changing a single answer.

The last section opens a second store on the raw-speed read tier:
``compression="zlib"`` writes every run as independently CRC'd
compressed blocks (the codec rides in the manifest), ``mmap=True``
maps frames instead of reading them, and hot value reads come out of
the shared decompressed-block cache.

Run: ``python examples/persistent_store.py``
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import FilterSpec, open_store


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="bloomrf-store-"))
    path = root / "db"
    rng = np.random.default_rng(11)
    keys = np.unique(rng.integers(0, 1 << 64, 50_000, dtype=np.uint64))
    spec = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})

    # ------------------------------------------------------------------
    # 1. Create: a fresh directory becomes a store; the manifest is
    #    written immediately, runs appear as the memtable flushes.
    # ------------------------------------------------------------------
    with open_store(
        path=path, filter=spec, shards=4, partition="hash",
        memtable_capacity=1 << 11, store_values=True,
        compaction="size-tiered",   # persisted with the store
    ) as db:
        values = [b"payload-%d" % i for i in range(keys.size)]
        db.put_many(keys, values)
        db.delete_many(keys[:500])          # tombstones persist too
        live_before = db.get_many(keys[:2_000])
        print(f"ingested {keys.size} keys into {db.num_shards} shards "
              f"({db.num_sstables} runs)")
    # Leaving the context manager flushed the memtable and synced every
    # run file + manifest — the store is durable now.

    on_disk = sorted(p.relative_to(root) for p in root.rglob("*.brf"))
    print("manifest/log frames on disk:", ", ".join(str(p) for p in on_disk))

    # ------------------------------------------------------------------
    # 2. Reopen: the persisted spec/shards/geometry win; filter blocks
    #    are deserialized (the Fig. 12.G "deserialization" bucket), so
    #    answers and probe accounting match the never-closed store.
    # ------------------------------------------------------------------
    with open_store(path=path) as db:
        assert db.specs == [spec] * 4       # the spec round-tripped
        assert np.array_equal(db.get_many(keys[:2_000]), live_before)
        assert not db.get(int(keys[0]))     # the delete survived
        assert db.get_value(int(keys[1_000])) == b"payload-1000"
        print(f"reopened: {db.num_keys} entries, filter deserialization "
              f"took {db.stats.deserialization_s * 1e3:.1f} ms")

        # Reads are exact; the filters only decide which runs get probed.
        lo = int(keys[5_000])
        print(f"scan_nonempty([{lo}, {lo}]) = "
              f"{bool(db.scan_nonempty(lo, lo))}")

        # 3. Write burst: every flush notifies the background scheduler,
        #    which merges similar-sized runs underneath the foreground
        #    writes.  The run count stays bounded instead of growing by
        #    one per flush; replaced files are pruned at each commit.
        for _ in range(8):
            db.put_many(rng.integers(0, 1 << 64, 5_000, dtype=np.uint64))
        db.drain_compaction()        # settle before reading the counters
        info = db.compaction_info()
        sched = info["scheduler"]
        print(f"after the burst: {db.num_sstables} runs, "
              f"{sched['merges']} background merges "
              f"(policy {info['policy']['policy']})")
        for level in info["levels"]:
            print(f"  level {level['level']}: {level['runs']} runs, "
                  f"{level['keys']} keys")

    # A second reopen sees the compacted state (the policy is in the
    # manifest, so background compaction resumes automatically).
    with open_store(path=path) as db:
        print(f"final reopen: {db.num_keys} entries across "
              f"{db.num_sstables} runs")

    # ------------------------------------------------------------------
    # 4. Crash durability: drop the store WITHOUT close() or flush().
    #    The writes below live only in the write-ahead log — reopening
    #    replays them, so nothing acknowledged is lost.  (`wal_sync`
    #    picks the fsync policy: "always" per call, "batch" group
    #    commit — the default — or "off".)
    # ------------------------------------------------------------------
    db = open_store(path=path)
    db.put(123_456_789, b"logged-before-the-memtable")
    db.delete(int(keys[2_000]))
    del db                                  # simulated kill -9

    with open_store(path=path) as db:       # replay happens here
        info = db.wal_info()
        print(f"crash recovery replayed {info['replayed_ops']} ops "
              f"(sync mode {info['sync']!r})")
        assert db.get_value(123_456_789) == b"logged-before-the-memtable"
        assert not db.get(int(keys[2_000]))  # the delete survived too

    # ------------------------------------------------------------------
    # 5. Raw-speed read tier: per-block compression + zero-copy mmap.
    #    The codec is persisted in the manifest (a reopen inherits it);
    #    mmap and the block-cache budget are runtime knobs.  Answers and
    #    probe counters stay bit-identical to the eager path — the knobs
    #    only change how the same bytes reach the CPU.
    # ------------------------------------------------------------------
    zpath = root / "zdb"
    payload = b"status=ok method=GET path=/api/v1/items latency_ms=007 " * 4
    with open_store(
        path=zpath, filter=spec, memtable_capacity=1 << 11,
        store_values=True, compression="zlib",  # or {"codec": "zlib",
    ) as db:                                    #     "block_bytes": 1 << 16}
        db.put_many(keys[:20_000], [payload] * 20_000)
    raw = sum(f.stat().st_size for f in path.rglob("*") if f.is_file())
    packed = sum(f.stat().st_size for f in zpath.rglob("*") if f.is_file())
    print(f"compressed store: {packed / 1024:.0f} KiB on disk "
          f"(uncompressed store above: {raw / 1024:.0f} KiB)")

    with open_store(path=zpath, mmap=True) as db:   # frames mapped, not read
        assert db.get_value(int(keys[7])) == payload  # block decoded on demand
        for k in keys[:512]:
            db.get_value(int(k))        # cold: decompress + fill the cache
        for k in keys[:512]:
            db.get_value(int(k))        # hot: served from the block cache
        print(f"block cache after a hot re-read: "
              f"{db.stats.block_cache_hits} hits, "
              f"{db.stats.block_cache_misses} misses")

    shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
