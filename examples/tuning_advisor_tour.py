#!/usr/bin/env python3
"""A tour of the tuning advisor (Sect. 7): how bloomRF configures itself.

Reproduces the paper's advisor walkthrough for n = 50M keys at several
budgets/range targets, printing the full candidate trace (the data behind
the paper's advisor figure) and the analytic FPR profile of the winner.

Run: ``python examples/tuning_advisor_tour.py``
"""

from repro import TuningAdvisor
from repro.core.model import extended_fpr_profile

N_KEYS = 50_000_000


def describe(bits_per_key: float, max_range: int) -> None:
    advisor = TuningAdvisor(domain_bits=64)
    report = advisor.configure(
        n_keys=N_KEYS,
        total_bits=int(N_KEYS * bits_per_key),
        max_range=max_range,
        return_report=True,
    )
    best = report.best
    print(f"\n=== {bits_per_key} bits/key, max range {max_range:.0e} ===")
    print("chosen:", best.config.describe())
    print(f"estimated point FPR: {best.point_fpr:.5f}   "
          f"range FPR (<= R): {best.range_fpr:.5f}")
    print("candidate curves (exact level -> objective at each budget split):")
    for level, series in sorted(report.curves().items()):
        lowest = min(obj for _, obj in series)
        marker = " <- winner" if level == best.exact_level else ""
        print(f"  exact level {level}: min objective {lowest:.5f} "
              f"over {len(series)} splits{marker}")

    profile = extended_fpr_profile(best.config, N_KEYS)
    interesting = [0, 7, 14, 21, 28, best.config.top_boundary_level - 1]
    print("per-level FPR profile (level: fpr):",
          {l: round(profile.fpr[l], 4) for l in interesting})


def main() -> None:
    # The paper's worked example: 14 bits/key, basic range budget.
    describe(14, 1 << 14)
    # The paper's advisor figure: 16 bits/key, |R| = 1e10.
    describe(16, 10**10)
    # A point-heavy configuration.
    describe(10, 1 << 6)


if __name__ == "__main__":
    main()
