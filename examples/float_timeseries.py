#!/usr/bin/env python3
"""Floating-point range filtering on a Kepler-like flux time series (Exp. 5).

Demonstrates the monotone float codec of Sect. 8: tiny (1e-3 wide) range
queries over doubles spanning many magnitudes, positive and negative.

Run: ``python examples/float_timeseries.py``
"""

import numpy as np

from repro.core.types import FloatBloomRF, float_to_key
from repro.workloads import kepler_like_flux


def main() -> None:
    flux = kepler_like_flux(50_000, seed=3)
    print(
        f"{flux.size} flux samples, range [{flux.min():.3g}, {flux.max():.3g}], "
        f"{np.mean(flux < 0) * 100:.1f}% negative"
    )

    # A float range of width 1e-3 can span ~2^40+ integer codes — the codec
    # makes this a plain integer range probe (paper, Sect. 1 & 8).
    lo_code, hi_code = float_to_key(1.0), float_to_key(1.0 + 1e-3)
    print(f"code-space width of [1.0, 1.001]: 2^{(hi_code - lo_code).bit_length()}")

    filt = FloatBloomRF.tuned(n_keys=flux.size, bits_per_key=18)
    filt.insert_many(flux)

    # Every stored value is found, point or range (no false negatives).
    for value in flux[:1000]:
        v = float(value)
        assert filt.contains_point(v)
        assert filt.contains_range(v - 5e-4, v + 5e-4)
    print("soundness: 1000/1000 stored values answer positive")

    # Empty-range FPR near the data (the hard case).
    sorted_flux = np.sort(flux)
    rng = np.random.default_rng(4)
    fp = trials = 0
    while trials < 2_000:
        anchor = float(sorted_flux[int(rng.integers(0, sorted_flux.size))])
        lo = anchor + float(rng.uniform(0.002, 0.2))
        hi = lo + 1e-3
        left = int(np.searchsorted(sorted_flux, lo))
        if left < sorted_flux.size and float(sorted_flux[left]) <= hi:
            continue
        trials += 1
        fp += filt.contains_range(lo, hi)
    print(f"empty 1e-3-wide range FPR: {fp / trials:.4f} "
          "(paper reports ~0.18 avg across 10-22 bits/key at 50M keys)")


if __name__ == "__main__":
    main()
