#!/usr/bin/env python3
"""Quickstart: build a bloomRF, insert keys online, run point + range probes.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import BloomRF

U64 = (1 << 64) - 1


def main() -> None:
    rng = np.random.default_rng(7)
    keys = np.unique(rng.integers(0, 1 << 64, 100_000, dtype=np.uint64))

    # One call tunes the whole filter: the advisor picks the level layout,
    # replica counts, segment split and exact-level bitmap for the budget.
    filt = BloomRF.tuned(
        n_keys=len(keys),
        bits_per_key=16,
        max_range=10**9,  # the largest range size you expect to query
    )
    print("configuration:", filt.config.describe())

    # bloomRF is online: insertions and probes interleave freely.
    filt.insert_many(keys[: len(keys) // 2])
    filt.insert_many(keys[len(keys) // 2 :])
    print(f"inserted {len(keys)} keys at {filt.bits_per_key:.1f} bits/key")

    # Point probes: never a false negative.
    sample = int(keys[1234])
    print(f"contains_point({sample}) = {filt.contains_point(sample)}")
    assert all(filt.contains_point(int(k)) for k in keys[:1000])

    # Range probes: "is [lo, hi] empty?" in O(k), independent of hi - lo.
    lo = int(keys[500])
    print(f"contains_range around a key: {filt.contains_range(lo - 10, lo + 10)}")

    # Measure the false-positive rate on guaranteed-empty ranges.
    sorted_keys = np.sort(keys)
    false_positives = trials = 0
    while trials < 2_000:
        start = int(rng.integers(0, 1 << 64, dtype=np.uint64))
        end = min(start + 10**6, U64)
        idx = int(np.searchsorted(sorted_keys, np.uint64(start)))
        if idx < sorted_keys.size and int(sorted_keys[idx]) <= end:
            continue  # not empty; skip
        trials += 1
        false_positives += filt.contains_range(start, end)
    print(f"empty-range FPR (width 1e6): {false_positives / trials:.4f}")

    # Filters serialize to plain bytes (the LSM stores them per SSTable).
    blob = filt.to_bytes()
    restored = BloomRF.from_bytes(blob)
    assert restored.contains_point(sample)
    print(f"serialized size: {len(blob) / 1024:.0f} KiB; round-trip OK")


if __name__ == "__main__":
    main()
