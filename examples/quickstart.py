#!/usr/bin/env python3
"""Quickstart: one filter API — specs, the registry, probes, and a store.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import FilterSpec, filter_from_bytes, make_filter, open_store

U64 = (1 << 64) - 1


def main() -> None:
    rng = np.random.default_rng(7)
    keys = np.unique(rng.integers(0, 1 << 64, 100_000, dtype=np.uint64))

    # A FilterSpec is plain data: which registered kind, which parameters.
    # It round-trips through JSON, so configs and manifests carry it as-is.
    spec = FilterSpec(
        "bloomrf",
        {
            "bits_per_key": 16,
            "max_range": 10**9,  # the largest range size you expect to query
        },
    )
    assert FilterSpec.from_json(spec.to_json()) == spec

    # make_filter runs the kind's tuner: for bloomRF the advisor picks the
    # level layout, replica counts, segment split and exact-level bitmap.
    filt = make_filter(spec, n_keys=len(keys))
    print("configuration:", filt.config.describe())

    # bloomRF is online: insertions and probes interleave freely.
    filt.insert_many(keys[: len(keys) // 2])
    filt.insert_many(keys[len(keys) // 2 :])
    print(f"inserted {len(keys)} keys at {filt.bits_per_key:.1f} bits/key")

    # Point probes: never a false negative.
    sample = int(keys[1234])
    print(f"contains_point({sample}) = {filt.contains_point(sample)}")
    assert all(filt.contains_point(int(k)) for k in keys[:1000])

    # Range probes: "is [lo, hi] empty?" in O(k), independent of hi - lo.
    lo = int(keys[500])
    print(f"contains_range around a key: {filt.contains_range(lo - 10, lo + 10)}")

    # Measure the false-positive rate on guaranteed-empty ranges.
    sorted_keys = np.sort(keys)
    false_positives = trials = 0
    while trials < 2_000:
        start = int(rng.integers(0, 1 << 64, dtype=np.uint64))
        end = min(start + 10**6, U64)
        idx = int(np.searchsorted(sorted_keys, np.uint64(start)))
        if idx < sorted_keys.size and int(sorted_keys[idx]) <= end:
            continue  # not empty; skip
        trials += 1
        false_positives += filt.contains_range(start, end)
    print(f"empty-range FPR (width 1e6): {false_positives / trials:.4f}")

    # Filters serialize to self-describing frames (the LSM stores them per
    # SSTable); filter_from_bytes dispatches on the frame's kind.
    blob = filt.to_bytes()
    restored = filter_from_bytes(blob)
    assert restored.contains_point(sample)
    print(f"serialized size: {len(blob) / 1024:.0f} KiB; round-trip OK")

    # The same spec drives a whole LSM store behind one Store interface:
    # shards=1 is an LsmDB, shards=N a partitioned ShardedLsmDB.
    with open_store(filter=spec, shards=4, partition="range") as db:
        db.put_many(keys[:50_000])
        db.flush()  # seal the memtables so reads consult the filter blocks
        present = db.get_many(keys[:1_000])
        assert present.all()
        stats = db.stats
        print(
            f"store: {db.num_keys} keys over {db.num_shards} shards, "
            f"filter FPR {stats.fpr:.4f} on {stats.filter_probes} probes"
        )


if __name__ == "__main__":
    main()
