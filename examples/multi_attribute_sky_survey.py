#!/usr/bin/env python3
"""Multi-attribute filtering on an SDSS-like catalog (the paper's Exp. 6).

Builds bloomRF(Run, ObjectID) with dual-orientation insertion and probes
``Run < 300 AND ObjectID = c`` conjunctions, comparing against two separate
single-attribute filters.

Run: ``python examples/multi_attribute_sky_survey.py``
"""

import numpy as np

from repro.core.bloomrf import BloomRF
from repro.core.types import AttributeSpec, MultiAttributeBloomRF
from repro.workloads import sdss_like_catalog

N_ROWS = 40_000
RUN_BOUND = 300
BITS_PER_KEY = 20


def main() -> None:
    run, object_id = sdss_like_catalog(N_ROWS, seed=11)
    print(f"{N_ROWS} rows; Run in [{run.min()}, {run.max()}], "
          f"ObjectID ~ 63-bit identifiers")

    # The multi-attribute filter reduces each attribute to 32 bits and
    # inserts both <Run, ObjectID> and <ObjectID, Run> (Sect. 8).
    spec_run = AttributeSpec("run", source_bits=64, target_bits=32)
    spec_obj = AttributeSpec("objectid", source_bits=64, target_bits=32)
    multi = MultiAttributeBloomRF.tuned(
        n_keys=N_ROWS, bits_per_key=BITS_PER_KEY, spec_a=spec_run, spec_b=spec_obj
    )
    multi.insert_many(run, object_id)

    # Baseline: two separate filters, same total budget, results ANDed.
    f_run = BloomRF.tuned(n_keys=N_ROWS, bits_per_key=BITS_PER_KEY / 2,
                          max_range=1 << 32)
    f_run.insert_many(run)
    f_obj = BloomRF.tuned(n_keys=N_ROWS, bits_per_key=BITS_PER_KEY / 2,
                          max_range=1 << 32)
    f_obj.insert_many(object_id)

    # Soundness on stored tuples.
    for a, b in zip(run[:500].tolist(), object_id[:500].tolist(), strict=True):
        assert multi.contains_point(a, b)
        assert multi.contains_b_eq_a_range(b, 0, a)
    print("soundness: 500/500 stored tuples answer positive")

    # Empty conjunctive probes: ObjectID values not in the catalog.
    present = set(object_id.tolist())
    rng = np.random.default_rng(12)
    multi_fp = separate_fp = trials = 0
    while trials < 2_000:
        candidate = int(rng.integers(1, 1 << 63, dtype=np.uint64))
        if candidate in present:
            continue
        trials += 1
        multi_fp += multi.contains_b_eq_a_range(candidate, 0, RUN_BOUND - 1)
        separate_fp += f_obj.contains_point(candidate) and f_run.contains_range(
            0, RUN_BOUND - 1
        )
    print(f"Run<{RUN_BOUND} AND ObjectID=absent ({trials} probes):")
    print(f"  multi-attribute bloomRF(Run,ObjectID): FPR = {multi_fp / trials:.4f}")
    print(f"  two separate filters (conjunctive):    FPR = {separate_fp / trials:.4f}")
    print("(the joint filter wins: Run<300 alone is unselective, so the")
    print(" separate Run-filter almost always fires — the paper's Exp. 6 insight)")


if __name__ == "__main__":
    main()
