#!/usr/bin/env python3
"""Range-scan-heavy KV workload on the LSM substrate (the paper's Exp. 1).

Loads a YCSB-E-style dataset into the RocksDB stand-in under three filter
policies (bloomRF / Rosetta / fence pointers only) and compares how many
block reads and how much simulated I/O time each policy saves on empty range
scans.

Run: ``python examples/lsm_range_scan.py``
"""

import numpy as np

from repro.lsm import LsmDB, SpecPolicy
from repro.workloads import empty_range_queries, uniform_keys

N_KEYS = 80_000
N_SSTABLES = 8
RANGE_SIZE = 10**3
N_QUERIES = 500


def run_policy(name: str, policy, keys: np.ndarray, queries) -> None:
    rng = np.random.default_rng(0)
    db = LsmDB(policy=policy)
    db.bulk_load(rng.permutation(keys), num_sstables=N_SSTABLES)
    build_s, serialize_s = db.construction_times()

    db.reset_stats()
    hits = sum(db.scan_nonempty(lo, hi) for lo, hi in queries)
    stats = db.stats
    assert hits == 0, "workload is empty by construction"

    print(f"\n--- policy: {name} ---")
    print(f"filter size:        {db.filter_bits_per_key():6.1f} bits/key")
    print(f"construction:       {build_s * 1e3:6.1f} ms (+{serialize_s * 1e3:.1f} ms serialize)")
    print(f"filter FPR:         {stats.fpr:8.4f}")
    print(f"blocks read:        {stats.blocks_read:6d}")
    print(f"simulated I/O wait: {stats.io_wait_s * 1e3:6.1f} ms")
    print(f"filter probe CPU:   {stats.filter_cpu_s * 1e3:6.1f} ms")
    print(f"total probe cost:   {stats.total_time_s * 1e3:6.1f} ms")


def main() -> None:
    keys = uniform_keys(N_KEYS, seed=1)
    queries = empty_range_queries(
        keys, N_QUERIES, range_size=RANGE_SIZE, workload="normal", seed=2
    )
    print(
        f"{N_KEYS} uniform keys in {N_SSTABLES} overlapping SSTs; "
        f"{N_QUERIES} empty scans of width {RANGE_SIZE:.0e} (normal workload)"
    )
    run_policy("fence pointers only", SpecPolicy("none"), keys, queries)
    run_policy(
        "Rosetta (22 bits/key)",
        SpecPolicy("rosetta", bits_per_key=22, max_range=RANGE_SIZE),
        keys,
        queries,
    )
    run_policy(
        "bloomRF (22 bits/key)",
        SpecPolicy("bloomrf", bits_per_key=22, max_range=RANGE_SIZE),
        keys,
        queries,
    )


if __name__ == "__main__":
    main()
