"""Persistent store throughput: ingest, reopen, and query the on-disk engines.

The persistence layer of :mod:`repro.lsm.store` behind the PR-5 tentpole:
``open_store(path=...)`` writes runs as :mod:`repro.serial` frames and
reopens them with *deserialized* filter blocks — the RocksDB-style claim
(paper Sect. 9) that filter blocks are built once at flush time and then
only ever loaded.  This benchmark measures the three phases that matter
for that deployment shape and guards their correctness:

* **ingest** — bulk ``put_many`` into a fresh on-disk store (runs + filter
  blocks + manifest written at every memtable flush);
* **reopen** — cold-open the directory: manifest parse + SST frame loads +
  filter-block deserialization (never a rebuild);
* **query** — the mixed read batch against the reopened store, asserted
  bit-identical (answers *and* IOStats counters) to an in-memory engine
  fed the same operations.

Two further sections measure the zero-copy read tier:

* **reopen curve** — values-bearing stores of growing size (run count held
  at ~30), cold-opened eagerly vs with ``mmap=True``: eager reopen is
  O(bytes) (read + CRC + copy every frame), mmap reopen is O(runs), so the
  speedup grows with store size.  The top-size ``reopen_speedup`` is the
  acceptance ratio; ``mmap_matches_eager`` pins both paths to identical
  answers, counters, and values.
* **codec sweep** — the same workload stored under each available codec
  (``none``/``zlib``, plus ``zstd`` when the extra is installed):
  disk bytes and shrink vs uncompressed, ingest rate, membership QPS, and
  cold-vs-warm value reads (the warm pass re-reads the same values through
  the decompressed-block cache).

Both the unsharded and the 4-shard engines run; results land in
``BENCH_store.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_store.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_store.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import FilterSpec, open_store
from repro.lsm import LsmDB, ShardedLsmDB, SpecPolicy
from repro.lsm.blocks import available_codecs

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"

SPEC = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})


def make_values(keys: np.ndarray) -> list[bytes]:
    """Compressible ~500-byte payloads: a unique prefix + repetitive tail.

    Real stored values (JSON, log lines, protobufs) are redundant; random
    key bytes alone are not, and would make every codec look useless.
    """
    tail = b"abcdefghijklmnop" * 30
    return [b"value-%016x|" % int(key) + tail for key in keys]


def disk_usage(path: Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


def build_queries(keys: np.ndarray, n_ops: int, seed: int):
    """80% point lookups (quarter present), 20% narrow range scans."""
    rng = np.random.default_rng(seed)
    n_points = int(n_ops * 0.8)
    n_scans = n_ops - n_points
    present = keys[rng.integers(0, keys.size, n_points // 4)]
    absent = rng.integers(
        0, 1 << 64, n_points - present.size, dtype=np.uint64
    )
    points = np.concatenate([present, absent])
    points = points[rng.permutation(points.size)]
    lo = rng.integers(0, 1 << 63, n_scans, dtype=np.uint64)
    width = np.uint64(1) << rng.integers(4, 20, n_scans, dtype=np.uint64)
    bounds = np.stack(
        [lo, np.minimum(lo + width, np.uint64((1 << 64) - 1))], axis=1
    )
    return points, bounds


def drive_queries(db, points, bounds):
    db.reset_stats()
    start = time.perf_counter()
    got = db.get_many(points)
    scanned = db.scan_nonempty_many(bounds)
    elapsed = time.perf_counter() - start
    return got, scanned, db.stats.counters(), elapsed


def bench_engine(
    root: Path, shards: int, keys, points, bounds, capacity: int
) -> dict:
    """One engine (unsharded or sharded): ingest -> reopen -> query."""
    path = root / f"store-{shards}"
    store = open_store(
        path=path, filter=SPEC, shards=shards, memtable_capacity=capacity
    )
    start = time.perf_counter()
    store.put_many(keys)
    store.flush()
    ingest_s = time.perf_counter() - start
    disk_bytes = disk_usage(path)
    store.close()

    start = time.perf_counter()
    reopened = open_store(path=path)
    reopen_s = time.perf_counter() - start

    # The in-memory twin, driven identically (flush included so the run
    # layouts — and therefore the probe accounting — match exactly).
    if shards == 1:
        memory = LsmDB(policy=SpecPolicy(SPEC), memtable_capacity=capacity)
    else:
        memory = ShardedLsmDB(
            policy=SpecPolicy(SPEC),
            num_shards=shards,
            memtable_capacity=capacity,
        )
    memory.put_many(keys)
    memory.flush()

    reopened.get_many(points[:64])  # warm pools and caches
    got, scanned, counters, query_s = drive_queries(reopened, points, bounds)
    mem_got, mem_scanned, mem_counters, _ = drive_queries(
        memory, points, bounds
    )
    exact = bool(
        np.array_equal(got, mem_got) and np.array_equal(scanned, mem_scanned)
    )
    n_ops = points.size + bounds.shape[0]
    row = {
        "shards": shards,
        "ingest_seconds": ingest_s,
        "ingest_keys_per_second": keys.size / ingest_s,
        "reopen_seconds": reopen_s,
        "query_seconds": query_s,
        "query_qps": n_ops / query_s,
        "disk_bytes": int(disk_bytes),
        "num_runs": (
            len(reopened.sstables)
            if getattr(reopened, "num_sstables", None) is None
            else reopened.num_sstables
        ),
        "reopen_bit_identical": exact,
        "reopen_counters_identical": counters == mem_counters,
    }
    reopened.close()
    memory.close()
    return row


def _timed_reopen(path: Path, *, mmap: bool, repeat: int = 3) -> float:
    """Best-of-``repeat`` cold-open time (open + close between attempts)."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        db = open_store(path=path, mmap=mmap)
        best = min(best, time.perf_counter() - start)
        db.close()
    return best


def bench_reopen_curve(root: Path, quick: bool) -> dict:
    """Reopen time vs store size, eager vs mmap, run count held at ~30.

    The stores are uncompressed and values-bearing, so the eager path's
    per-byte work (read, CRC, copy into fresh arrays) dominates while the
    mmap path stays O(runs): map each frame, slice lazily.
    """
    # Quick mode keeps the full-size top point: the eager/mmap speedup
    # grows with store size, so the CI ratio gate must measure the same
    # store the committed full run did (only intermediate points drop).
    sizes = [15_000, 60_000] if quick else [7_500, 15_000, 30_000, 60_000]
    rng = np.random.default_rng(61)
    rows = []
    top_path = None
    top_keys = None
    for n_keys in sizes:
        keys = rng.integers(0, 1 << 64, n_keys, dtype=np.uint64)
        path = root / f"curve-{n_keys}"
        capacity = max(128, n_keys // 30)
        store = open_store(
            path=path,
            filter=SPEC,
            memtable_capacity=capacity,
            store_values=True,
        )
        store.put_many(keys, make_values(keys))
        store.flush()
        num_runs = (
            len(store.sstables)
            if getattr(store, "num_sstables", None) is None
            else store.num_sstables
        )
        store.close()
        eager_s = _timed_reopen(path, mmap=False)
        mmap_s = _timed_reopen(path, mmap=True)
        rows.append(
            {
                "n_keys": int(n_keys),
                "num_runs": int(num_runs),
                "disk_bytes": disk_usage(path),
                "eager_reopen_seconds": eager_s,
                "mmap_reopen_seconds": mmap_s,
                "speedup": eager_s / mmap_s,
            }
        )
        top_path, top_keys = path, keys

    # Exactness at the top size: both reopen modes must answer the same
    # query batch with identical results, counters, and value bytes.
    points, bounds = build_queries(top_keys, 1_000, seed=63)
    sample = top_keys[:: max(1, top_keys.size // 512)]
    eager_db = open_store(path=top_path, mmap=False)
    mmap_db = open_store(path=top_path, mmap=True)
    try:
        e_got, e_scanned, e_counters, _ = drive_queries(eager_db, points, bounds)
        m_got, m_scanned, m_counters, _ = drive_queries(mmap_db, points, bounds)
        matches = bool(
            np.array_equal(e_got, m_got)
            and np.array_equal(e_scanned, m_scanned)
            and e_counters == m_counters
            and all(
                eager_db.get_value(int(key)) == mmap_db.get_value(int(key))
                for key in sample
            )
        )
    finally:
        eager_db.close()
        mmap_db.close()

    return {
        "mmap_matches_eager": matches,
        "reopen_speedup": rows[-1]["speedup"],
        "points": rows,
    }


def bench_codec_sweep(root: Path, quick: bool) -> dict:
    """One values-bearing workload per codec, queried through ``mmap=True``.

    ``disk_shrink`` is relative to the uncompressed store; the cold value
    pass decompresses blocks on demand, the warm pass re-reads the same
    values through the decompressed-block cache.
    """
    n_keys = 12_000 if quick else 60_000
    n_ops = 2_000 if quick else 10_000
    capacity = 1 << 9 if quick else 1 << 11
    rng = np.random.default_rng(67)
    keys = rng.integers(0, 1 << 64, n_keys, dtype=np.uint64)
    values = make_values(keys)
    points, bounds = build_queries(keys, n_ops, seed=71)
    sample = keys[:: max(1, keys.size // 2_000)]

    codecs = ["none", "zlib"]
    if "zstd" in available_codecs():
        codecs.append("zstd")

    rows = []
    baseline = None  # (disk_bytes, got, scanned, counters, values) for "none"
    for codec in codecs:
        path = root / f"codec-{codec}"
        store = open_store(
            path=path,
            filter=SPEC,
            memtable_capacity=capacity,
            store_values=True,
            compression=None if codec == "none" else codec,
        )
        start = time.perf_counter()
        store.put_many(keys, values)
        store.flush()
        ingest_s = time.perf_counter() - start
        store.close()
        disk_bytes = disk_usage(path)

        db = open_store(path=path, mmap=True)
        try:
            got, scanned, counters, query_s = drive_queries(db, points, bounds)
            start = time.perf_counter()
            read_values = [db.get_value(int(key)) for key in sample]
            cold_s = time.perf_counter() - start
            start = time.perf_counter()
            for key in sample:
                db.get_value(int(key))
            warm_s = time.perf_counter() - start
            cache_hits = db.stats.block_cache_hits
            cache_misses = db.stats.block_cache_misses
        finally:
            db.close()

        if baseline is None:
            baseline = (disk_bytes, got, scanned, counters, read_values)
        matches = bool(
            np.array_equal(got, baseline[1])
            and np.array_equal(scanned, baseline[2])
            and counters == baseline[3]
            and read_values == baseline[4]
        )
        rows.append(
            {
                "codec": codec,
                "disk_bytes": int(disk_bytes),
                "disk_shrink": 1.0 - disk_bytes / baseline[0],
                "ingest_seconds": ingest_s,
                "ingest_keys_per_second": keys.size / ingest_s,
                "query_qps": (points.size + bounds.shape[0]) / query_s,
                "cold_value_read_seconds": cold_s,
                "warm_value_read_seconds": warm_s,
                "warm_speedup": cold_s / warm_s,
                "block_cache_hits": int(cache_hits),
                "block_cache_misses": int(cache_misses),
                "answers_match_none": matches,
            }
        )

    zlib_shrink = next(
        row["disk_shrink"] for row in rows if row["codec"] == "zlib"
    )
    return {
        "codecs": rows,
        "zlib_disk_shrink": zlib_shrink,
        "zlib_shrink_ok": bool(zlib_shrink >= 0.30),
        "answers_match_none": all(row["answers_match_none"] for row in rows),
    }


def run(quick: bool) -> dict:
    n_keys = 12_000 if quick else 60_000
    n_ops = 2_000 if quick else 10_000
    capacity = 1 << 9 if quick else 1 << 11
    rng = np.random.default_rng(53)
    keys = rng.integers(0, 1 << 64, n_keys, dtype=np.uint64)
    points, bounds = build_queries(keys, n_ops, seed=59)

    root = Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        rows = [
            bench_engine(root, shards, keys, points, bounds, capacity)
            for shards in (1, 4)
        ]
        curve = bench_reopen_curve(root, quick)
        sweep = bench_codec_sweep(root, quick)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "benchmark": "store",
        "mode": "quick" if quick else "full",
        "n_keys": int(n_keys),
        "n_ops": int(n_ops),
        "memtable_capacity": capacity,
        "spec": SPEC.to_dict(),
        "engines": rows,
        "reopen_curve": curve,
        "codec_sweep": sweep,
        "reopen_bit_identical": all(r["reopen_bit_identical"] for r in rows),
        "reopen_counters_identical": all(
            r["reopen_counters_identical"] for r in rows
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workload",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["engines"]:
        print(
            f"[store {result['mode']}] {row['shards']}sh: ingest "
            f"{row['ingest_keys_per_second']:,.0f} keys/s | reopen "
            f"{row['reopen_seconds'] * 1e3:.1f} ms | query "
            f"{row['query_qps']:,.0f} ops/s | "
            f"{row['disk_bytes'] / 1024:.0f} KiB on disk"
        )
    curve = result["reopen_curve"]
    top = curve["points"][-1]
    print(
        f"[store {result['mode']}] reopen curve @{top['n_keys']} keys / "
        f"{top['num_runs']} runs: eager {top['eager_reopen_seconds'] * 1e3:.1f} "
        f"ms vs mmap {top['mmap_reopen_seconds'] * 1e3:.1f} ms "
        f"({curve['reopen_speedup']:.1f}x)"
    )
    for row in result["codec_sweep"]["codecs"]:
        print(
            f"[store {result['mode']}] codec {row['codec']}: "
            f"{row['disk_bytes'] / 1024:.0f} KiB "
            f"(shrink {row['disk_shrink'] * 100:.0f}%) | ingest "
            f"{row['ingest_keys_per_second']:,.0f} keys/s | query "
            f"{row['query_qps']:,.0f} ops/s | values cold "
            f"{row['cold_value_read_seconds'] * 1e3:.1f} ms / warm "
            f"{row['warm_value_read_seconds'] * 1e3:.1f} ms"
        )
    print(f"-> {args.output}")

    if not result["reopen_bit_identical"]:
        print("FAIL: reopened answers differ from the in-memory store")
        return 1
    if not result["reopen_counters_identical"]:
        print("FAIL: reopened IOStats counters differ from the in-memory store")
        return 1
    if not curve["mmap_matches_eager"]:
        print("FAIL: mmap reopen answers differ from the eager reopen")
        return 1
    if not result["codec_sweep"]["answers_match_none"]:
        print("FAIL: a compressed store answered differently than uncompressed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
