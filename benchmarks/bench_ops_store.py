"""Persistent store throughput: ingest, reopen, and query the on-disk engines.

The persistence layer of :mod:`repro.lsm.store` behind the PR-5 tentpole:
``open_store(path=...)`` writes runs as :mod:`repro.serial` frames and
reopens them with *deserialized* filter blocks — the RocksDB-style claim
(paper Sect. 9) that filter blocks are built once at flush time and then
only ever loaded.  This benchmark measures the three phases that matter
for that deployment shape and guards their correctness:

* **ingest** — bulk ``put_many`` into a fresh on-disk store (runs + filter
  blocks + manifest written at every memtable flush);
* **reopen** — cold-open the directory: manifest parse + SST frame loads +
  filter-block deserialization (never a rebuild);
* **query** — the mixed read batch against the reopened store, asserted
  bit-identical (answers *and* IOStats counters) to an in-memory engine
  fed the same operations.

Both the unsharded and the 4-shard engines run; results land in
``BENCH_store.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_store.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_store.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import FilterSpec, open_store
from repro.lsm import LsmDB, ShardedLsmDB, SpecPolicy

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_store.json"

SPEC = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})


def build_queries(keys: np.ndarray, n_ops: int, seed: int):
    """80% point lookups (quarter present), 20% narrow range scans."""
    rng = np.random.default_rng(seed)
    n_points = int(n_ops * 0.8)
    n_scans = n_ops - n_points
    present = keys[rng.integers(0, keys.size, n_points // 4)]
    absent = rng.integers(
        0, 1 << 64, n_points - present.size, dtype=np.uint64
    )
    points = np.concatenate([present, absent])
    points = points[rng.permutation(points.size)]
    lo = rng.integers(0, 1 << 63, n_scans, dtype=np.uint64)
    width = np.uint64(1) << rng.integers(4, 20, n_scans, dtype=np.uint64)
    bounds = np.stack(
        [lo, np.minimum(lo + width, np.uint64((1 << 64) - 1))], axis=1
    )
    return points, bounds


def drive_queries(db, points, bounds):
    db.reset_stats()
    start = time.perf_counter()
    got = db.get_many(points)
    scanned = db.scan_nonempty_many(bounds)
    elapsed = time.perf_counter() - start
    return got, scanned, db.stats.counters(), elapsed


def bench_engine(
    root: Path, shards: int, keys, points, bounds, capacity: int
) -> dict:
    """One engine (unsharded or sharded): ingest -> reopen -> query."""
    path = root / f"store-{shards}"
    store = open_store(
        path=path, filter=SPEC, shards=shards, memtable_capacity=capacity
    )
    start = time.perf_counter()
    store.put_many(keys)
    store.flush()
    ingest_s = time.perf_counter() - start
    disk_bytes = sum(f.stat().st_size for f in path.rglob("*") if f.is_file())
    store.close()

    start = time.perf_counter()
    reopened = open_store(path=path)
    reopen_s = time.perf_counter() - start

    # The in-memory twin, driven identically (flush included so the run
    # layouts — and therefore the probe accounting — match exactly).
    if shards == 1:
        memory = LsmDB(policy=SpecPolicy(SPEC), memtable_capacity=capacity)
    else:
        memory = ShardedLsmDB(
            policy=SpecPolicy(SPEC),
            num_shards=shards,
            memtable_capacity=capacity,
        )
    memory.put_many(keys)
    memory.flush()

    reopened.get_many(points[:64])  # warm pools and caches
    got, scanned, counters, query_s = drive_queries(reopened, points, bounds)
    mem_got, mem_scanned, mem_counters, _ = drive_queries(
        memory, points, bounds
    )
    exact = bool(
        np.array_equal(got, mem_got) and np.array_equal(scanned, mem_scanned)
    )
    n_ops = points.size + bounds.shape[0]
    row = {
        "shards": shards,
        "ingest_seconds": ingest_s,
        "ingest_keys_per_second": keys.size / ingest_s,
        "reopen_seconds": reopen_s,
        "query_seconds": query_s,
        "query_qps": n_ops / query_s,
        "disk_bytes": int(disk_bytes),
        "num_runs": (
            len(reopened.sstables)
            if getattr(reopened, "num_sstables", None) is None
            else reopened.num_sstables
        ),
        "reopen_bit_identical": exact,
        "reopen_counters_identical": counters == mem_counters,
    }
    reopened.close()
    memory.close()
    return row


def run(quick: bool) -> dict:
    n_keys = 12_000 if quick else 60_000
    n_ops = 2_000 if quick else 10_000
    capacity = 1 << 9 if quick else 1 << 11
    rng = np.random.default_rng(53)
    keys = rng.integers(0, 1 << 64, n_keys, dtype=np.uint64)
    points, bounds = build_queries(keys, n_ops, seed=59)

    root = Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        rows = [
            bench_engine(root, shards, keys, points, bounds, capacity)
            for shards in (1, 4)
        ]
    finally:
        shutil.rmtree(root, ignore_errors=True)

    return {
        "benchmark": "store",
        "mode": "quick" if quick else "full",
        "n_keys": int(n_keys),
        "n_ops": int(n_ops),
        "memtable_capacity": capacity,
        "spec": SPEC.to_dict(),
        "engines": rows,
        "reopen_bit_identical": all(r["reopen_bit_identical"] for r in rows),
        "reopen_counters_identical": all(
            r["reopen_counters_identical"] for r in rows
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workload",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["engines"]:
        print(
            f"[store {result['mode']}] {row['shards']}sh: ingest "
            f"{row['ingest_keys_per_second']:,.0f} keys/s | reopen "
            f"{row['reopen_seconds'] * 1e3:.1f} ms | query "
            f"{row['query_qps']:,.0f} ops/s | "
            f"{row['disk_bytes'] / 1024:.0f} KiB on disk"
        )
    print(f"-> {args.output}")

    if not result["reopen_bit_identical"]:
        print("FAIL: reopened answers differ from the in-memory store")
        return 1
    if not result["reopen_counters_identical"]:
        print("FAIL: reopened IOStats counters differ from the in-memory store")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
