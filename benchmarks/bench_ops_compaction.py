"""Background compaction under a write burst: write-amp, read-amp, tails.

PR 7's tentpole — :mod:`repro.lsm.compaction` — exists to keep the run
set bounded under sustained writes without stalling the foreground.  This
benchmark drives the same write burst into three stores (manual / size-
tiered / leveled background compaction) and measures the three costs the
policy trades between:

* **write amplification** — physical keys written into runs (flushes +
  background merge outputs) per logical key ingested, from the
  scheduler's merge accounting;
* **read amplification** — the run count a worst-case point probe
  consults, sampled after every ingest batch (the curve) and at the end
  (after a final drain), plus the measured mixed-query throughput;
* **foreground tail latency during compaction** — per-batch ``put_many``
  and ``get_many`` latencies *while merges run underneath*, reported as
  p50/p95/p99/max.

Acceptance (asserted, not just reported): every policy's final answers
are bit-identical to the manual store's, and every background policy ends
with fewer runs than manual.  Results land in ``BENCH_compaction.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_compaction.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_compaction.py --quick  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import FilterSpec, open_store

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_compaction.json"

SPEC = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})

POLICIES = [
    ("manual", "manual"),
    ("size-tiered", {"policy": "size-tiered", "min_runs": 4, "max_runs": 8}),
    ("leveled", {"policy": "leveled", "runs_per_level": 4, "fanout": 8.0}),
]


def percentiles(samples: list[float]) -> dict:
    arr = np.array(samples, dtype=np.float64) * 1e3  # milliseconds
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "max_ms": float(arr.max()),
    }


def bench_policy(name, config, keys, probes, capacity, batch) -> dict:
    """One policy: burst-ingest with live merges, then drain and query."""
    db = open_store(filter=SPEC, memtable_capacity=capacity, compaction=config)
    put_lat: list[float] = []
    get_lat: list[float] = []
    runs_curve: list[int] = []
    sample = probes[: max(64, probes.size // 16)]

    start = time.perf_counter()
    for at in range(0, keys.size, batch):
        t0 = time.perf_counter()
        db.put_many(keys[at : at + batch])
        put_lat.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        db.get_many(sample)
        get_lat.append(time.perf_counter() - t0)
        runs_curve.append(len(db.sstables))
    db.flush()
    db.drain_compaction()
    ingest_s = time.perf_counter() - start

    t0 = time.perf_counter()
    answers = db.get_many(probes)
    query_s = time.perf_counter() - t0

    info = db.compaction_info()
    merged_out = info["scheduler"]["merges"] if info["scheduler"] else 0
    merged_output_keys = (
        info["scheduler"]["merged_output_keys"] if info["scheduler"] else 0
    )
    row = {
        "policy": name,
        "config": info["policy"],
        "ingest_seconds": ingest_s,
        "ingest_keys_per_second": keys.size / ingest_s,
        "query_qps": probes.size / query_s,
        "final_runs": len(db.sstables),
        "mean_runs_during_ingest": float(np.mean(runs_curve)),
        "max_runs_during_ingest": int(max(runs_curve)),
        "merges": merged_out,
        # flushes write every ingested key once; merges re-write their
        # outputs — physical/logical is the write amplification.
        "write_amp": (keys.size + merged_output_keys) / keys.size,
        "put_latency": percentiles(put_lat),
        "get_latency_during_compaction": percentiles(get_lat),
        "levels": info["levels"],
    }
    return row, answers, db


def run(quick: bool) -> dict:
    n_keys = 24_000 if quick else 120_000
    capacity = 1 << 9 if quick else 1 << 10
    batch = capacity  # one flush per batch: a sustained burst
    rng = np.random.default_rng(71)
    keys = rng.integers(0, 1 << 48, n_keys, dtype=np.uint64)
    probes = np.concatenate(
        [
            keys[rng.integers(0, keys.size, 2_000)],
            rng.integers(0, 1 << 48, 2_000, dtype=np.uint64),
        ]
    )

    rows = []
    baseline = None
    bit_identical = True
    for name, config in POLICIES:
        row, answers, db = bench_policy(
            name, config, keys, probes, capacity, batch
        )
        if name == "manual":
            baseline = answers
        else:
            row["bit_identical_to_manual"] = bool(
                np.array_equal(answers, baseline)
            )
            bit_identical &= row["bit_identical_to_manual"]
        rows.append(row)
        db.close()

    manual_runs = rows[0]["final_runs"]
    bounded = all(r["final_runs"] < manual_runs for r in rows[1:])
    return {
        "benchmark": "compaction",
        "mode": "quick" if quick else "full",
        "n_keys": int(n_keys),
        "memtable_capacity": capacity,
        "spec": SPEC.to_dict(),
        "policies": rows,
        "bit_identical": bit_identical,
        "compaction_bounds_runs": bounded,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke mode: smaller burst"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["policies"]:
        tail = row["get_latency_during_compaction"]
        print(
            f"[compaction {result['mode']}] {row['policy']:>11}: "
            f"ingest {row['ingest_keys_per_second']:,.0f} keys/s | "
            f"write-amp {row['write_amp']:.2f} | "
            f"runs {row['final_runs']} (mean {row['mean_runs_during_ingest']:.1f}) | "
            f"read p99 {tail['p99_ms']:.2f} ms"
        )
    print(f"-> {args.output}")

    if not result["bit_identical"]:
        print("FAIL: background compaction changed answers vs manual store")
        return 1
    if not result["compaction_bounds_runs"]:
        print("FAIL: a background policy did not reduce the final run count")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
