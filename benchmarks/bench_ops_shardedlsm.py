"""Sharded LSM engine throughput: ``ShardedLsmDB`` vs unsharded ``LsmDB``.

The Fig. 12.B scaling experiment one layer up: the same bulk write + mixed
read workload is driven through the unsharded store and through
:class:`~repro.lsm.sharded.ShardedLsmDB` at increasing shard counts.  Both
use the batched engines from PRs 1-2; what sharding adds is *partitioned run
sequences* — each shard flushes its own, ``~N``-fold shorter L0 run list, so
a point lookup consults ``~L/N`` filter blocks instead of ``L`` — plus
thread-pool overlap of the per-shard NumPy sweeps on multi-core hosts (the
run-list cut is what shows on single-core CI boxes).

Workload: a bulk ingest of the key set through ``put_many`` (chunked
memtable fills, ``insert_many``-built filter blocks), then a mixed batch of
point lookups (20% present), empty-range scans, and fresh-key puts.  The
exactness ladder is asserted on every shard count — sharded answers must be
bit-identical to the unsharded store's, merged ``IOStats`` must equal the
per-shard sum — plus a serialization round-trip of a live filter block
(words reconstructed bit for bit).  Results land in
``BENCH_shardedlsm.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_shardedlsm.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_shardedlsm.py --quick  # CI smoke

The full run uses a 10k-op mixed workload and requires >1x throughput vs
unsharded at >= 4 shards; ``--quick`` shrinks the workload and asserts the
exactness ladder plus a soft speedup floor (CI boxes may have one core).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import FilterSpec, open_store
from repro.lsm import IOStats, LsmDB, ShardedLsmDB, SpecPolicy
from repro.lsm.filter_policy import handle_from_bytes

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_shardedlsm.json"

SHARD_COUNTS = (1, 2, 4, 8)


def make_policy():
    return SpecPolicy("bloomrf", bits_per_key=18, max_range=1 << 20)


def build_mixed_workload(keys: np.ndarray, n_ops: int, seed: int):
    """60% point lookups (20% present), 20% empty-range scans, 20% puts."""
    rng = np.random.default_rng(seed)
    n_points = int(n_ops * 0.6)
    n_scans = int(n_ops * 0.2)
    n_puts = n_ops - n_points - n_scans
    n_present = int(n_points * 0.2)
    present = keys[rng.integers(0, keys.size, n_present)]
    absent = rng.integers(0, 1 << 64, n_points - n_present, dtype=np.uint64)
    points = np.concatenate([present, absent])
    points = points[rng.permutation(points.size)]
    lo = rng.integers(0, 1 << 63, n_scans, dtype=np.uint64)
    width = np.uint64(1) << rng.integers(4, 20, n_scans, dtype=np.uint64)
    bounds = np.stack(
        [lo, np.minimum(lo + width, np.uint64((1 << 64) - 1))], axis=1
    )
    fresh = rng.integers(0, 1 << 64, n_puts, dtype=np.uint64)
    return points, bounds, fresh


def drive(db, keys, points, bounds, fresh, repeats: int = 3):
    """Ingest + mixed phase through the batched APIs; returns timings.

    The read-only portion is repeated and the best time kept (single-run
    wall clocks on shared CI boxes are noisy); the put churn — which
    mutates state — is timed once at the end.
    """
    start = time.perf_counter()
    db.put_many(keys)
    ingest_s = time.perf_counter() - start
    db.get_many(points[:64])  # warm pools and caches
    read_s = None
    for _ in range(repeats):
        db.reset_stats()
        start = time.perf_counter()
        got = db.get_many(points)
        scanned = db.scan_nonempty_many(bounds)
        elapsed = time.perf_counter() - start
        read_s = elapsed if read_s is None else min(read_s, elapsed)
    stats = db.reset_stats()
    start = time.perf_counter()
    db.put_many(fresh)
    put_s = time.perf_counter() - start
    return ingest_s, read_s + put_s, got, scanned, stats


def roundtrip_bit_exact(db: ShardedLsmDB) -> bool:
    """A live filter block survives serialize -> load words-identical."""
    db.flush()  # guarantee at least one run per non-empty shard
    for shard in db.shards:
        if shard.sstables:
            handle = shard.sstables[0].filter
            blob = handle.serialize()
            restored = handle_from_bytes(blob)
            return (
                restored.serialize() == blob
                and restored._filter._bits == handle._filter._bits
            )
    return False


def open_store_matches_direct(
    keys: np.ndarray, points: np.ndarray, bounds: np.ndarray, capacity: int
) -> bool:
    """The ``open_store`` facade answers exactly like direct construction.

    Uses a deliberately non-default :class:`FilterSpec` (different
    bits/key, max_range, and seed from every default in the package) so a
    facade that dropped or rewrote the spec cannot pass by accident.
    """
    spec = FilterSpec(
        "bloomrf", {"bits_per_key": 11, "max_range": 1 << 14, "seed": 0xFACE}
    )
    with open_store(
        filter=spec, shards=4, partition="range", memtable_capacity=capacity
    ) as facade, ShardedLsmDB(
        policy=SpecPolicy(spec),
        num_shards=4,
        partition="range",
        memtable_capacity=capacity,
    ) as direct:
        facade.put_many(keys)
        direct.put_many(keys)
        return bool(
            np.array_equal(facade.get_many(points), direct.get_many(points))
            and np.array_equal(
                facade.scan_nonempty_many(bounds),
                direct.scan_nonempty_many(bounds),
            )
            and facade.stats.counters() == direct.stats.counters()
        )


def run(quick: bool) -> dict:
    n_keys = 12_000 if quick else 60_000
    n_ops = 2_000 if quick else 10_000
    # Sized so the unsharded store accumulates ~25-30 overlapping L0 runs:
    # the shape where per-shard run lists (and their N-fold cut in filter
    # probes per key) dominate the read path.
    capacity = 1 << 9 if quick else 1 << 11
    rng = np.random.default_rng(31)
    keys = rng.integers(0, 1 << 64, n_keys, dtype=np.uint64)
    points, bounds, fresh = build_mixed_workload(keys, n_ops, seed=37)

    baseline = LsmDB(policy=make_policy(), memtable_capacity=capacity)
    base_ingest, base_mixed, base_got, base_scanned, _ = drive(
        baseline, keys, points, bounds, fresh
    )

    shard_rows = []
    exact = True
    stats_merged_ok = True
    roundtrip_ok = True
    for num_shards in SHARD_COUNTS:
        with ShardedLsmDB(
            policy=make_policy(),
            num_shards=num_shards,
            # Range dispatch: point batches and narrow scans each touch
            # exactly one shard, so the whole mixed workload partitions
            # cleanly (hash dispatch would fan every scan to all shards).
            partition="range",
            memtable_capacity=capacity,
        ) as db:
            ingest_s, mixed_s, got, scanned, stats = drive(
                db, keys, points, bounds, fresh
            )
            exact &= bool(
                np.array_equal(got, base_got)
                and np.array_equal(scanned, base_scanned)
            )
            total = IOStats.merged([shard.stats for shard in db.shards])
            stats_merged_ok &= db.stats.counters() == total.counters()
            runs_per_shard = [len(shard.sstables) for shard in db.shards]
            if num_shards == max(SHARD_COUNTS):
                roundtrip_ok = roundtrip_bit_exact(db)
        shard_rows.append(
            {
                "num_shards": num_shards,
                "ingest_seconds": ingest_s,
                "mixed_seconds": mixed_s,
                "mixed_qps": n_ops / mixed_s,
                "speedup_vs_unsharded": base_mixed / mixed_s,
                "runs_per_shard": runs_per_shard,
                "filter_probes": stats.filter_probes,
            }
        )

    return {
        "benchmark": "shardedlsm",
        "mode": "quick" if quick else "full",
        "n_keys": int(n_keys),
        "n_ops": int(n_ops),
        "memtable_capacity": capacity,
        "partition": "range",
        "workload": {
            "point_lookups": int(points.size),
            "range_scans": int(bounds.shape[0]),
            "puts": int(fresh.size),
        },
        "unsharded": {
            "ingest_seconds": base_ingest,
            "mixed_seconds": base_mixed,
            "mixed_qps": n_ops / base_mixed,
            "num_runs": len(baseline.sstables),
        },
        "sharded": shard_rows,
        "bit_identical": exact,
        "stats_merged_identical": stats_merged_ok,
        "serialization_roundtrip_bit_exact": roundtrip_ok,
        "open_store_matches_direct": open_store_matches_direct(
            keys, points, bounds, capacity
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workload, soft speedup floor",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    by_shards = {row["num_shards"]: row for row in result["sharded"]}
    best = max(row["speedup_vs_unsharded"] for row in result["sharded"])
    print(
        f"[shardedlsm {result['mode']}] {result['n_ops']} mixed ops over "
        f"{result['n_keys']} keys: unsharded "
        f"{result['unsharded']['mixed_qps']:,.0f} ops/s | "
        + " | ".join(
            f"{s}sh {by_shards[s]['speedup_vs_unsharded']:.2f}x"
            for s in sorted(by_shards)
        )
        + f" -> {args.output}"
    )

    if not result["bit_identical"]:
        print("FAIL: sharded answers differ from the unsharded store")
        return 1
    if not result["stats_merged_identical"]:
        print("FAIL: merged IOStats differ from the per-shard sum")
        return 1
    if not result["serialization_roundtrip_bit_exact"]:
        print("FAIL: filter-block serialization round-trip not bit-exact")
        return 1
    if not result["open_store_matches_direct"]:
        print(
            "FAIL: open_store facade answers differ from direct construction"
        )
        return 1
    at4 = by_shards[4]["speedup_vs_unsharded"]
    floor = 0.5 if args.quick else 1.0
    if at4 < floor:
        print(
            f"FAIL: {at4:.2f}x at 4 shards below the {floor}x floor "
            f"(best {best:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
