"""Ablations of bloomRF's Sect. 7 design choices.

Isolates each optimization the paper layers onto the basic filter:

* **exact level** — tuned config vs the same config with the exact bitmap's
  budget folded back into the PMHF segments;
* **replicated hash functions** — top-layer replicas on/off;
* **delta (word size)** — basic filter with Delta 3..7;
* **degenerate guard** — per-group word reversal on an adversarial key set
  (Sect. 3.2's degenerate-distribution discussion).
"""

import numpy as np
import pytest

from _common import (
    keyset,
    print_table,
    range_queries_cached,
    scaled,
    write_result,
)
from repro.core.bloomrf import BloomRF
from repro.core.config import BloomRFConfig
from repro.core.advisor import TuningAdvisor

N_KEYS = scaled(60_000)
N_QUERIES = scaled(800, 200)
BITS = 18
RANGE = 10**7


def measure_fpr(filt, queries) -> float:
    return sum(filt.contains_range(lo, hi) for lo, hi in queries) / len(queries)


def tuned_config(**advisor_kwargs) -> BloomRFConfig:
    advisor = TuningAdvisor(domain_bits=64, **advisor_kwargs)
    return advisor.configure(
        n_keys=N_KEYS, total_bits=N_KEYS * BITS, max_range=RANGE
    )


@pytest.fixture(scope="module")
def ablations():
    keys = keyset("uniform", N_KEYS)
    queries = list(range_queries_cached("uniform", N_KEYS, N_QUERIES, RANGE, "uniform"))
    sink = []
    results = {}

    # --- exact level on/off -------------------------------------------
    with_exact = tuned_config()
    no_exact = BloomRFConfig(
        domain_bits=64,
        deltas=with_exact.deltas,
        replicas=with_exact.replicas,
        segment_of=with_exact.segment_of,
        segment_bits=tuple(
            bits + (with_exact.exact_bitmap_bits if i == 0 else 0) - (
                (bits + with_exact.exact_bitmap_bits) % 64 if i == 0 else 0
            )
            for i, bits in enumerate(with_exact.segment_bits)
        ),
        exact_level=None,
    )
    for label, config in (("with exact level", with_exact), ("without", no_exact)):
        filt = BloomRF(config)
        filt.insert_many(keys)
        results[("exact", label)] = measure_fpr(filt, queries)

    # --- top-layer replicas on/off -------------------------------------
    for replicas, label in ((with_exact.replicas, "replicas (2 on top)"),
                            ((1,) * with_exact.num_layers, "no replicas")):
        config = BloomRFConfig.from_dict(
            {**with_exact.to_dict(), "replicas": list(replicas)}
        )
        filt = BloomRF(config)
        filt.insert_many(keys)
        results[("replicas", label)] = measure_fpr(filt, queries)

    # --- delta sweep on the basic filter -------------------------------
    basic_queries = list(
        range_queries_cached("uniform", N_KEYS, N_QUERIES, 1 << 12, "uniform")
    )
    for delta in (3, 5, 7):
        filt = BloomRF.basic(n_keys=N_KEYS, bits_per_key=BITS, delta=delta)
        filt.insert_many(keys)
        results[("delta", delta)] = measure_fpr(filt, basic_queries)

    # --- degenerate guard ----------------------------------------------
    # Adversarial keys: identical in-word offset bits on every layer.
    lam = 0b010101
    adversarial = []
    for i in range(scaled(4_000, 1000)):
        key = 0
        for layer in range(9):
            group_bits = (i >> layer) & 1
            key |= ((group_bits << 6) | lam) << (layer * 7)
        adversarial.append(key & ((1 << 64) - 1))
    adversarial = np.array(sorted(set(adversarial)), dtype=np.uint64)
    probes = np.array(
        [int(k) ^ (1 << 40) for k in adversarial[: scaled(2_000, 500)]],
        dtype=np.uint64,
    )
    probe_set = set(adversarial.tolist())
    probes = np.array([p for p in probes.tolist() if p not in probe_set],
                      dtype=np.uint64)
    for guard in (False, True):
        config = BloomRFConfig.from_dict(
            {**BloomRFConfig.basic(len(adversarial), 12).to_dict(),
             "degenerate_guard": guard}
        )
        filt = BloomRF(config)
        filt.insert_many(adversarial)
        fpr = float(np.mean(filt.contains_point_many(probes)))
        results[("guard", guard)] = fpr

    rows = [[str(k[0]), str(k[1]), v] for k, v in results.items()]
    print_table(
        f"Ablations ({N_KEYS} keys, {BITS} bits/key, range {RANGE:.0e})",
        ["knob", "setting", "fpr"],
        rows,
        sink=sink,
    )
    write_result("ablation_design", "\n".join(sink))
    return results


class TestAblations:
    def test_exact_level_helps_large_ranges(self, ablations):
        assert ablations[("exact", "with exact level")] <= (
            ablations[("exact", "without")] + 0.02
        )

    def test_replicas_do_not_hurt(self, ablations):
        with_r = ablations[("replicas", "replicas (2 on top)")]
        without = ablations[("replicas", "no replicas")]
        assert with_r <= without + 0.05

    def test_larger_delta_fewer_layers_tradeoff(self, ablations):
        """All delta settings stay usable on basic-rated ranges (<= 2^14)."""
        for delta in (3, 5, 7):
            assert ablations[("delta", delta)] < 0.35, delta

    def test_guard_fixes_degenerate_distribution(self, ablations):
        assert ablations[("guard", True)] <= ablations[("guard", False)]


def test_ablation_benchmark(benchmark, ablations):
    keys = keyset("uniform", N_KEYS)
    config = tuned_config()

    def build():
        filt = BloomRF(config)
        filt.insert_many(keys)
        return filt.size_bits

    benchmark(build)
