"""Batched point-lookup engine throughput: ``LsmDB.get_many`` vs scalar loop.

The point counterpart of ``bench_ops_rangebatch.py``: a bulk-loaded LSM
(bloomRF filter blocks, overlapping L0 runs) is probed with a mixed workload
of present and absent keys, once through the seed-style scalar loop
(``db.get`` per key) and once through the batched path (``db.get_many``,
which consults every run's filter block once per batch and prunes settled
keys from older runs).  Results — and the bit-identity + accounting-identity
checks — land in ``BENCH_pointbatch.json`` at the repo root so future PRs
can track the trajectory.

A second section measures the standalone filter: ``BloomRF.contains_point_many``
against the scalar ``contains_point`` loop, plus a ``ShardedBloomRF``
dispatch of the same batch (shard speedup needs multiple cores; the recorded
quantity is throughput, the asserted one is answer soundness).

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_pointbatch.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_pointbatch.py --quick  # CI smoke

The full run uses a 10k-lookup workload and records the headline speedup
(target: >= 10x).  ``--quick`` shrinks the workload and only asserts that
batch throughput beats the scalar loop.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.bloomrf import BloomRF
from repro.lsm import LsmDB, SpecPolicy
from repro.shard import ShardedBloomRF

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_pointbatch.json"


def build_workload(
    keys: np.ndarray, n_lookups: int, present_share: float, seed: int
) -> np.ndarray:
    """Shuffled lookup keys: ``present_share`` hits, the rest absent.

    Absent keys are uniform draws re-rejected against the key set — with
    64-bit keys a collision is effectively impossible, but we reject anyway
    so the present share is exact.
    """
    rng = np.random.default_rng(seed)
    n_present = int(n_lookups * present_share)
    present = keys[rng.integers(0, keys.size, n_present)]
    absent = rng.integers(0, 1 << 64, n_lookups - n_present, dtype=np.uint64)
    absent = absent[~np.isin(absent, keys)]
    while absent.size < n_lookups - n_present:
        extra = rng.integers(
            0, 1 << 64, n_lookups - n_present - absent.size, dtype=np.uint64
        )
        absent = np.concatenate([absent, extra[~np.isin(extra, keys)]])
    lookups = np.concatenate([present, absent])
    return lookups[rng.permutation(lookups.size)]


def scalar_loop(db: LsmDB, lookups: np.ndarray) -> np.ndarray:
    """The seed read path: one Python-level ``get`` walk per key."""
    return np.fromiter(
        (db.get(int(key)) for key in lookups), dtype=bool, count=lookups.size
    )


def run(quick: bool) -> dict:
    n_keys = 20_000 if quick else 100_000
    n_lookups = 2_000 if quick else 10_000
    num_sstables = 8
    rng = np.random.default_rng(23)
    keys = np.unique(rng.integers(0, 1 << 64, n_keys, dtype=np.uint64))
    db = LsmDB(policy=SpecPolicy("bloomrf", bits_per_key=18, max_range=1 << 20))
    db.bulk_load(rng.permutation(keys), num_sstables=num_sstables)
    lookups = build_workload(keys, n_lookups, present_share=0.2, seed=29)

    db.get_many(lookups[:64])  # warm both paths
    scalar_loop(db, lookups[:64])
    db.reset_stats()
    start = time.perf_counter()
    scalar = scalar_loop(db, lookups)
    scalar_s = time.perf_counter() - start
    scalar_stats = db.reset_stats()
    start = time.perf_counter()
    batch = db.get_many(lookups)
    batch_s = time.perf_counter() - start
    batch_stats = db.reset_stats()

    identical = bool(np.array_equal(scalar, batch))
    accounting_identical = bool(
        scalar_stats.filter_probes == batch_stats.filter_probes
        and scalar_stats.filter_false_positives
        == batch_stats.filter_false_positives
        and scalar_stats.blocks_read == batch_stats.blocks_read
    )

    # Standalone filter section: batched + sharded probes of one filter.
    filt = BloomRF.tuned(n_keys=keys.size, bits_per_key=18, max_range=1 << 20)
    filt.insert_many(keys)
    start = time.perf_counter()
    filter_scalar = np.fromiter(
        (filt.contains_point(int(key)) for key in lookups),
        dtype=bool,
        count=lookups.size,
    )
    filter_scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    filter_batch = filt.contains_point_many(lookups)
    filter_batch_s = time.perf_counter() - start
    with ShardedBloomRF(filt.config, num_shards=4) as sharded:
        sharded.insert_many(keys)
        sharded.contains_point_many(lookups[:64])  # warm the pool
        start = time.perf_counter()
        sharded_batch = sharded.contains_point_many(lookups)
        sharded_s = time.perf_counter() - start
        no_false_negatives = bool(sharded.contains_point_many(keys[:1000]).all())
    sharded_sound = bool(
        np.array_equal(filter_scalar, filter_batch)
        # Sharded positives are a subset of the unsharded filter's (fewer
        # cross-partition collisions) and must cover every present key.
        and not np.any(sharded_batch & ~filter_batch)
        and no_false_negatives
    )

    return {
        "benchmark": "pointbatch",
        "mode": "quick" if quick else "full",
        "n_keys": int(keys.size),
        "n_lookups": int(n_lookups),
        "num_sstables": num_sstables,
        "present_fraction": float(np.mean(scalar)),
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "scalar_qps": n_lookups / scalar_s,
        "batch_qps": n_lookups / batch_s,
        "speedup": scalar_s / batch_s,
        "bit_identical": identical,
        "accounting_identical": accounting_identical,
        "filter_scalar_qps": n_lookups / filter_scalar_s,
        "filter_batch_qps": n_lookups / filter_batch_s,
        "filter_speedup": filter_scalar_s / filter_batch_s,
        "sharded_qps": n_lookups / sharded_s,
        "sharded_sound": sharded_sound,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workload, asserts batch >= scalar",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"[pointbatch {result['mode']}] {result['n_lookups']} lookups "
        f"({result['present_fraction']:.0%} present) over "
        f"{result['num_sstables']} runs: "
        f"scalar {result['scalar_qps']:,.0f} q/s | "
        f"batch {result['batch_qps']:,.0f} q/s | "
        f"speedup {result['speedup']:.1f}x | "
        f"filter-only {result['filter_speedup']:.1f}x | "
        f"sharded {result['sharded_qps']:,.0f} q/s -> {args.output}"
    )

    if not result["bit_identical"]:
        print("FAIL: batch results differ from scalar get loop")
        return 1
    if not result["accounting_identical"]:
        print("FAIL: batch probe/IO accounting differs from the scalar loop")
        return 1
    if not result["sharded_sound"]:
        print("FAIL: sharded answers unsound vs the unsharded filter")
        return 1
    floor = 1.0 if args.quick else 10.0
    if result["speedup"] < floor:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the {floor}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
