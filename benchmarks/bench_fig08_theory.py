"""Fig. 8 — theoretical comparison: bloomRF vs Rosetta vs lower bound.

Regenerates both panels (analytically, like the paper): bits/key needed for
a target FPR for (A) point queries and (B) range queries of size R = 16, 32,
64, d = 64-bit integers.
"""

import math

import pytest

from _common import print_table, write_result
from repro.bench.theory import (
    bloomrf_bits_for_range_fpr,
    carter_point_lower_bound,
    goswami_range_lower_bound,
    rosetta_first_cut_bits,
)

N_KEYS = 10**7
FPR_GRID = (0.0025, 0.005, 0.01, 0.015, 0.02, 0.025, 0.03)
RANGE_SIZES = (16, 32, 64)


def bloomrf_point_bits(fpr: float, n_keys: int = N_KEYS, delta: int = 7) -> float:
    """Bits/key for a target point FPR with k fixed by the datatype.

    Solves ``(1 - e^{-kn/m})^k = fpr`` for ``m`` — the non-free-``k``
    constraint that keeps bloomRF slightly above Rosetta for points (Sect. 6).
    """
    k = max(1, round((64 - math.log2(n_keys)) / delta))
    inner = fpr ** (1.0 / k)
    return k / -math.log(1.0 - inner)


def rosetta_point_bits(fpr: float) -> float:
    """A point-optimal BF (Rosetta's bottom level): n log2(1/fpr) / ln 2."""
    return math.log2(1.0 / fpr) / math.log(2)


@pytest.fixture(scope="module")
def tables():
    sink = []
    rows = []
    for fpr in FPR_GRID:
        rows.append(
            [
                fpr,
                carter_point_lower_bound(fpr),
                rosetta_point_bits(fpr),
                bloomrf_point_bits(fpr),
            ]
        )
    print_table(
        "Fig 8.A  Point queries: bits/key for target FPR (d=64)",
        ["fpr", "lower_bound", "rosetta", "bloomrf"],
        rows,
        sink=sink,
    )
    for r in RANGE_SIZES:
        rows = []
        for fpr in FPR_GRID:
            rows.append(
                [
                    fpr,
                    goswami_range_lower_bound(fpr, r, N_KEYS),
                    rosetta_first_cut_bits(fpr, r),
                    bloomrf_bits_for_range_fpr(fpr, r, N_KEYS),
                ]
            )
        print_table(
            f"Fig 8.B  Range queries R={r}: bits/key for target FPR",
            ["fpr", "lower_bound", "rosetta", "bloomrf"],
            rows,
            sink=sink,
        )
    write_result("fig08_theory", "\n\n".join(sink))
    return sink


def test_fig08_orderings(tables):
    """The paper's qualitative claims hold across the grid."""
    for fpr in FPR_GRID:
        for r in RANGE_SIZES:
            assert goswami_range_lower_bound(fpr, r, N_KEYS) < rosetta_first_cut_bits(fpr, r)
            assert bloomrf_bits_for_range_fpr(fpr, r, N_KEYS) < rosetta_first_cut_bits(fpr, r)
        # Points: bloomRF pays a little over the optimal-k BF (Sect. 6).
        assert bloomrf_point_bits(fpr) >= rosetta_point_bits(fpr) * 0.95


def test_fig08_curves_benchmark(benchmark, tables):
    """Latency of one full analytic sweep (the advisor runs these models)."""

    def sweep():
        total = 0.0
        for fpr in FPR_GRID:
            for r in RANGE_SIZES:
                total += goswami_range_lower_bound(fpr, r, N_KEYS)
                total += bloomrf_bits_for_range_fpr(fpr, r, N_KEYS)
        return total

    assert benchmark(sweep) > 0
