"""Fig. 9 — LSM ("RocksDB") comparison at 22 bits/key across range sizes.

Panels A1/B1/C1: FPR and execution time of Rosetta / SuRF / bloomRF for
range sizes 2 .. 1e11 under uniform / normal / zipfian workloads.
Panels A2/B2/C2: point-query FPR insets.
Panel D: Prefix-BF and fence-pointer latency baselines.

Paper setting: 50M uniform keys, 1e5 empty queries, 22 bits/key; scaled via
REPRO_SCALE (defaults keep the full sweep in ~2 minutes).
"""

import pytest

from _common import (
    lsm_db_cached,
    print_table,
    range_queries_cached,
    run_lsm_points,
    run_lsm_ranges,
    scaled,
    write_result,
    PRF_NAMES,
)

BITS = 22
N_KEYS = scaled(80_000)
N_QUERIES = scaled(600, 150)
N_SSTABLES = 8
RANGE_SIZES = (2, 16, 64, 10**3, 10**5, 10**7, 10**9, 10**11)
WORKLOADS = ("uniform", "normal", "zipfian")


@pytest.fixture(scope="module")
def range_results():
    table = {}
    sink = []
    for workload in WORKLOADS:
        rows = []
        for range_size in RANGE_SIZES:
            row = [f"{range_size:.0e}" if range_size >= 1000 else range_size]
            for name in PRF_NAMES:
                run = run_lsm_ranges(
                    name, BITS, range_size, N_KEYS, N_QUERIES, N_SSTABLES, workload
                )
                table[(workload, range_size, name)] = run
                row.extend([run.fpr, run.time_s])
            rows.append(row)
        print_table(
            f"Fig 9.{'ABC'[WORKLOADS.index(workload)]}1  Range queries, "
            f"{workload} workload, {BITS} bits/key "
            f"({N_KEYS} keys, {N_SSTABLES} SSTs, {N_QUERIES} empty queries)",
            ["range", "rosetta_fpr", "rosetta_s", "surf_fpr", "surf_s",
             "bloomrf_fpr", "bloomrf_s"],
            rows,
            sink=sink,
        )
    write_result("fig09_ranges", "\n\n".join(sink))
    return table


@pytest.fixture(scope="module")
def point_results():
    sink = []
    rows = []
    table = {}
    for workload in WORKLOADS:
        row = [workload]
        for name in PRF_NAMES:
            run = run_lsm_points(name, BITS, N_KEYS, N_QUERIES, N_SSTABLES, workload)
            table[(workload, name)] = run.fpr
            row.append(run.fpr)
        rows.append(row)
    print_table(
        "Fig 9.A2-C2  Point-query FPR insets "
        "(paper: Rosetta 2.8e-5 < bloomRF 1.8e-4 << SuRF 2.5e-2)",
        ["workload"] + list(PRF_NAMES),
        rows,
        sink=sink,
    )
    write_result("fig09_points", "\n".join(sink))
    return table


@pytest.fixture(scope="module")
def baseline_results():
    """Panel D: prefix-BF and fence pointers latency across range sizes."""
    sink = []
    rows = []
    for range_size in (2, 64, 10**3, 10**5, 10**7, 10**9):
        row = [f"{range_size:.0e}" if range_size >= 1000 else range_size]
        for name in ("prefix-bloom", "none"):
            run = run_lsm_ranges(
                name, BITS, range_size, N_KEYS, N_QUERIES, N_SSTABLES, "uniform"
            )
            row.extend([run.fpr, run.time_s])
        rows.append(row)
    print_table(
        "Fig 9.D  Prefix-BF and fence pointers (policy 'none')",
        ["range", "prefixbf_fpr", "prefixbf_s", "fence_fpr", "fence_s"],
        rows,
        sink=sink,
    )
    write_result("fig09_baselines", "\n".join(sink))
    return rows


class TestFig9Shapes:
    def test_bloomrf_handles_all_ranges(self, range_results):
        """Problem 1 solved: bloomRF FPR stays low from 2 to 1e9."""
        for workload in WORKLOADS:
            for range_size in RANGE_SIZES[:-1]:
                run = range_results[(workload, range_size, "bloomrf")]
                assert run.fpr < 0.25, (workload, range_size, run.fpr)

    def test_rosetta_collapses_at_large_ranges(self, range_results):
        small = range_results[("uniform", 16, "rosetta")].fpr
        large = range_results[("uniform", 10**9, "rosetta")].fpr
        assert large > max(4 * small, 0.4)

    def test_bloomrf_beats_rosetta_at_medium_ranges(self, range_results):
        for range_size in (10**5, 10**7, 10**9):
            rosetta = range_results[("uniform", range_size, "rosetta")]
            bloomrf = range_results[("uniform", range_size, "bloomrf")]
            assert bloomrf.fpr <= rosetta.fpr

    def test_bloomrf_latency_competitive(self, range_results):
        """End-to-end probe cost: bloomRF at or below Rosetta's."""
        for range_size in (16, 10**5, 10**9):
            rosetta = range_results[("uniform", range_size, "rosetta")]
            bloomrf = range_results[("uniform", range_size, "bloomrf")]
            assert bloomrf.time_s <= rosetta.time_s * 1.5

    def test_point_insets(self, point_results):
        """Rosetta has the best point FPR; bloomRF stays close."""
        for workload in WORKLOADS:
            assert point_results[(workload, "rosetta")] <= 0.01
            assert point_results[(workload, "bloomrf")] <= 0.02

    def test_prefix_bf_degrades(self, baseline_results):
        """Fence pointers and prefix BFs are not competitive PRFs."""
        assert baseline_results[-1][2] > 0  # prefix-bf pays probe time


def test_fig09_probe_benchmark(benchmark, range_results, point_results, baseline_results):
    db = lsm_db_cached("bloomrf", BITS, 10**5, N_KEYS, N_SSTABLES)
    queries = list(
        range_queries_cached("uniform", N_KEYS, 200, 10**5, "uniform")
    )

    def probe():
        for lo, hi in queries:
            db.scan_nonempty(lo, hi)

    benchmark(probe)
