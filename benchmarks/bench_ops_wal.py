"""Write-ahead-log cost: ingest throughput across sync modes + group commit.

The durability tentpole logs every write to ``WAL.brf`` before the
memtable mutates, so the write path gains one ``os.write`` per batch and
— depending on ``wal_sync`` — fsync traffic.  This benchmark quantifies
that tax and guards the acceptance bound: **batched group commit must
keep ingest within 3x of running with fsync off entirely.**

Measured per sync mode (``off`` / ``batch`` / ``always``), on the
unsharded and the 4-shard engines:

* **ingest** — streamed ``put_many`` batches into a fresh store (the WAL
  append + group-commit fsync path, including memtable flush rotations);
* **fsyncs** — the log's own fsync count, from ``wal_info()``;
* a **group-commit sweep** (batch mode, group sizes 1/16/256/4096)
  showing the fsync-batching curve the mode exists for.

Results land in ``BENCH_wal.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_wal.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_wal.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api import FilterSpec, open_store

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_wal.json"

SPEC = FilterSpec("bloomrf", {"bits_per_key": 16, "max_range": 1 << 20})

SYNC_MODES = ("off", "batch", "always")
GROUP_COMMIT_SWEEP = (1, 16, 256, 4096)


def ingest(
    root: Path,
    name: str,
    keys: np.ndarray,
    batch: int,
    capacity: int,
    shards: int,
    **wal_kw,
) -> dict:
    """Stream ``keys`` in ``batch``-sized put_many calls; time + count."""
    path = root / name
    store = open_store(
        path=path,
        filter=SPEC,
        shards=shards,
        memtable_capacity=capacity,
        **wal_kw,
    )
    start = time.perf_counter()
    for lo in range(0, keys.size, batch):
        store.put_many(keys[lo : lo + batch])
    elapsed = time.perf_counter() - start
    info = store.wal_info()
    store.close()
    row = {
        "shards": shards,
        "ingest_seconds": elapsed,
        "ingest_keys_per_second": keys.size / elapsed,
        "wal_fsyncs": int(info["fsyncs"]),
        "wal_bytes": int(info["bytes"]),
    }
    row.update({k: v for k, v in wal_kw.items()})
    shutil.rmtree(path, ignore_errors=True)
    return row


def run(quick: bool) -> dict:
    n_keys = 20_000 if quick else 120_000
    batch = 64 if quick else 256
    capacity = 1 << 10 if quick else 1 << 12
    rng = np.random.default_rng(61)
    keys = rng.integers(0, 1 << 64, n_keys, dtype=np.uint64)

    root = Path(tempfile.mkdtemp(prefix="bench-wal-"))
    try:
        modes = []
        for shards in (1, 4):
            for sync in SYNC_MODES:
                modes.append(
                    ingest(
                        root,
                        f"mode-{sync}-{shards}",
                        keys,
                        batch,
                        capacity,
                        shards,
                        wal_sync=sync,
                        wal_group_commit=1024,
                    )
                )
        sweep = [
            ingest(
                root,
                f"gc-{group}",
                keys,
                batch,
                capacity,
                1,
                wal_sync="batch",
                wal_group_commit=group,
            )
            for group in GROUP_COMMIT_SWEEP
        ]
    finally:
        shutil.rmtree(root, ignore_errors=True)

    # The acceptance bound: batch within 3x of off, per engine.
    bounds_ok = True
    ratios = {}
    for shards in (1, 4):
        by_sync = {
            row["wal_sync"]: row for row in modes if row["shards"] == shards
        }
        ratio = (
            by_sync["off"]["ingest_keys_per_second"]
            / by_sync["batch"]["ingest_keys_per_second"]
        )
        ratios[str(shards)] = ratio
        bounds_ok = bounds_ok and ratio <= 3.0
    return {
        "benchmark": "wal",
        "mode": "quick" if quick else "full",
        "n_keys": int(n_keys),
        "put_batch": batch,
        "memtable_capacity": capacity,
        "spec": SPEC.to_dict(),
        "sync_modes": modes,
        "group_commit_sweep": sweep,
        "batch_vs_off_slowdown": ratios,
        "batch_within_3x_of_off": bounds_ok,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workload",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["sync_modes"]:
        print(
            f"[wal {result['mode']}] {row['shards']}sh sync={row['wal_sync']:>6}: "
            f"{row['ingest_keys_per_second']:,.0f} keys/s "
            f"({row['wal_fsyncs']} fsyncs)"
        )
    for row in result["group_commit_sweep"]:
        print(
            f"[wal {result['mode']}] group_commit={row['wal_group_commit']:>4}: "
            f"{row['ingest_keys_per_second']:,.0f} keys/s "
            f"({row['wal_fsyncs']} fsyncs)"
        )
    print(f"-> {args.output}")

    if not result["batch_within_3x_of_off"]:
        worst = max(result["batch_vs_off_slowdown"].values())
        print(f"FAIL: batched group commit is {worst:.2f}x slower than off "
              f"(bound: 3x)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
