"""Fig. 12.F — multi-attribute filtering on the SDSS-like catalog.

bloomRF(Run, ObjectID) probed with ``Run < 300 AND ObjectID = c`` versus two
separate filters bloomRF(Run) and bloomRF(ObjectID) combined conjunctively.
Paper insight: the multi-attribute filter yields better FPR despite its
reduced 32-bit precision, because its FPR depends on the joint selectivity.
"""

import time

import numpy as np
import pytest

from _common import print_table, scaled, write_result
from repro.core.bloomrf import BloomRF
from repro.core.types import AttributeSpec, MultiAttributeBloomRF
from repro.workloads import sdss_like_catalog

N_ROWS = scaled(50_000)
N_QUERIES = scaled(1_500, 300)
BITS_GRID = (12, 16, 20, 24)
RUN_BOUND = 300


@pytest.fixture(scope="module")
def dataset():
    run, obj = sdss_like_catalog(N_ROWS, seed=5)
    # Absent ObjectIDs for guaranteed-empty conjunctive probes.
    present = set(obj.tolist())
    rng = np.random.default_rng(6)
    absent = []
    while len(absent) < N_QUERIES:
        candidate = int(rng.integers(1, 1 << 63, dtype=np.uint64))
        if candidate not in present:
            absent.append(candidate)
    return run, obj, absent


def build_filters(run, obj, bits):
    spec_run = AttributeSpec("run", source_bits=64, target_bits=32)
    spec_obj = AttributeSpec("objectid", source_bits=64, target_bits=32)
    multi = MultiAttributeBloomRF.tuned(
        n_keys=N_ROWS, bits_per_key=bits, spec_a=spec_run, spec_b=spec_obj
    )
    multi.insert_many(run, obj)
    single_run = BloomRF.tuned(
        n_keys=N_ROWS, bits_per_key=bits / 2, max_range=1 << 32
    )
    single_run.insert_many(run)
    single_obj = BloomRF.tuned(
        n_keys=N_ROWS, bits_per_key=bits / 2, max_range=1 << 32
    )
    single_obj.insert_many(obj)
    return multi, single_run, single_obj


@pytest.fixture(scope="module")
def results(dataset):
    run, obj, absent = dataset
    sink = []
    rows = []
    table = {}
    for bits in BITS_GRID:
        multi, single_run, single_obj = build_filters(run, obj, bits)

        start = time.perf_counter()
        multi_fp = sum(
            multi.contains_b_eq_a_range(candidate, 0, RUN_BOUND - 1)
            for candidate in absent
        )
        multi_ops = len(absent) / (time.perf_counter() - start)

        start = time.perf_counter()
        # Two separate filters, combined conjunctively (both must fire).
        separate_fp = sum(
            single_obj.contains_point(candidate)
            and single_run.contains_range(0, RUN_BOUND - 1)
            for candidate in absent
        )
        separate_ops = len(absent) / (time.perf_counter() - start)

        table[bits] = (multi_fp / len(absent), separate_fp / len(absent))
        rows.append(
            [bits, multi_fp / len(absent), multi_ops,
             separate_fp / len(absent), separate_ops]
        )
    print_table(
        f"Fig 12.F  Run<{RUN_BOUND} AND ObjectID=const over {N_ROWS} rows "
        "(all probes empty: ObjectID absent)",
        ["bits/key", "multi fpr", "multi ops/s", "separate fpr", "separate ops/s"],
        rows,
        sink=sink,
    )
    write_result("fig12f_multiattr", "\n".join(sink))
    return table


class TestMultiAttr:
    def test_multi_beats_separate(self, results):
        """The paper's surprising observation: the joint filter wins even at
        reduced precision, because Run<300 alone is unselective (the single
        Run-filter almost always fires)."""
        for bits in BITS_GRID[1:]:
            multi_fpr, separate_fpr = results[bits]
            assert multi_fpr <= separate_fpr + 0.01, bits

    def test_multi_fpr_usable(self, results):
        assert results[BITS_GRID[-1]][0] < 0.25

    def test_soundness(self, dataset):
        run, obj, _ = dataset
        multi, _, _ = build_filters(run, obj, 20)
        for a, b in zip(run[:300].tolist(), obj[:300].tolist(), strict=True):
            assert multi.contains_point(a, b)
            assert multi.contains_b_eq_a_range(b, 0, a)


def test_fig12f_probe_benchmark(benchmark, dataset, results):
    run, obj, absent = dataset
    multi, _, _ = build_filters(run, obj, 16)

    def probe():
        return sum(
            multi.contains_b_eq_a_range(c, 0, RUN_BOUND - 1) for c in absent[:200]
        )

    benchmark(probe)
