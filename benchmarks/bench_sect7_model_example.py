"""Sect. 7 worked examples: extended FPR model and the tuning advisor.

Regenerates (a) the d=16/n=3 model example — ``p ~ 0.683`` and the per-level
FPR vector ``(0, 0.95, 0.78, 0.53, 0.32, ..., 0.01)`` — and (b) the advisor
trace for n = 50M keys, 16 bits/key, |R| = 1e10, which the paper's Fig. ??.C
plots as two candidate curves (exact levels 36 and 37) with the minimum
marked on each.
"""

import pytest

from _common import print_table, write_result
from repro.core.advisor import TuningAdvisor
from repro.core.config import BloomRFConfig
from repro.core.model import extended_fpr_profile


@pytest.fixture(scope="module")
def model_example():
    config = BloomRFConfig(
        domain_bits=16,
        deltas=(4, 4, 4, 4),
        replicas=(1, 1, 1, 1),
        segment_of=(0, 0, 0, 0),
        segment_bits=(32,),
        exact_level=16,
    )
    return extended_fpr_profile(config, n_keys=3)


@pytest.fixture(scope="module")
def advisor_report():
    advisor = TuningAdvisor(domain_bits=64)
    return advisor.configure(
        n_keys=50_000_000,
        total_bits=50_000_000 * 16,
        max_range=10**10,
        return_report=True,
    )


@pytest.fixture(scope="module")
def tables(model_example, advisor_report):
    sink = []
    rows = [
        [level, model_example.fpr[level]] for level in range(16, -1, -1)
    ]
    print_table(
        "Sect 7 model example (d=16, n=3, Delta=(4,4,4,4), m=32): "
        f"p={model_example.p_zero_by_segment[0]:.3f} (paper: 0.683)",
        ["level", "fpr (paper: 0, 0.95, 0.78, 0.53, 0.32, ..., 0.01)"],
        rows,
        sink=sink,
    )
    curve_rows = []
    for cand in advisor_report.candidates:
        curve_rows.append(
            [
                cand.exact_level,
                cand.mid_fraction,
                cand.range_fpr,
                cand.point_fpr,
                cand.objective,
                "<- chosen" if cand is advisor_report.best else "",
            ]
        )
    print_table(
        "Advisor trace: n=50M, 16 bits/key, |R|=1e10 "
        "(paper: examines exact levels 36/37, picks ~0.5% point / ~3% range)",
        ["exact_level", "mid_fraction", "fpr_range", "fpr_point", "objective", ""],
        curve_rows,
        sink=sink,
    )
    write_result("sect7_model_example", "\n\n".join(sink))
    return sink


def test_model_example_matches_paper(model_example, tables):
    assert model_example.p_zero_by_segment[0] == pytest.approx(0.683, abs=0.01)
    assert model_example.fpr[15] == pytest.approx(0.95, abs=0.02)
    assert model_example.point_fpr < 0.03


def test_advisor_estimates_match_paper(advisor_report, tables):
    """Paper: ~0.5% point FPR and ~3% for dyadic ranges up to 1e10."""
    assert advisor_report.best.point_fpr < 0.02
    assert advisor_report.best.range_fpr < 0.15
    assert {c.exact_level for c in advisor_report.candidates} >= {36, 37}


def test_advisor_benchmark(benchmark, tables):
    """Auto-tuning cost (paper: ~8 ms)."""
    advisor = TuningAdvisor(domain_bits=64)
    result = benchmark(
        lambda: advisor.configure(
            n_keys=50_000_000, total_bits=50_000_000 * 16, max_range=10**10
        )
    )
    assert result.exact_level in (35, 36, 37)
