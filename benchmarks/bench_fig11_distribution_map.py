"""Fig. 11 — standalone distribution map: who wins where.

For every combination of key distribution x workload distribution x
bits/key x range size (x number of keys), build all three PRFs standalone,
measure FPR on empty queries, and report the best filter plus its margin —
the color/symbol map of Fig. 11.  Fig. 1 is the flattened version of this
map (averaged over key counts) and is derived in bench_fig01_positioning.
"""

import pytest

from _common import (
    PRF_NAMES,
    filter_cached,
    measure_range_fpr,
    print_table,
    range_queries_cached,
    scaled,
    write_result,
)

N_KEYS = scaled(30_000)
N_QUERIES = scaled(300, 100)
BITS_GRID = (10, 16, 22)
RANGE_SIZES = (16, 10**5, 10**9)
KEY_DISTS = ("uniform", "normal", "zipfian")
WORKLOADS = ("uniform", "normal", "zipfian")


def fpr_gap_symbol(best: float, second: float) -> str:
    gap = second - best
    if gap < 0.0001:
        return "~"
    if gap < 0.001:
        return "."
    if gap < 0.01:
        return "o"
    if gap < 0.1:
        return "O"
    return "#"


@pytest.fixture(scope="module")
def map_results():
    table = {}
    sink = []
    for key_dist in KEY_DISTS:
        for workload in WORKLOADS:
            rows = []
            for range_size in RANGE_SIZES:
                row = [f"{range_size:.0e}" if range_size >= 1000 else range_size]
                for bits in BITS_GRID:
                    fprs = {}
                    for name in PRF_NAMES:
                        fut = filter_cached(
                            name, key_dist, N_KEYS, bits, max(range_size, 2)
                        )
                        queries = range_queries_cached(
                            key_dist, N_KEYS, N_QUERIES, range_size, workload
                        )
                        fprs[name] = measure_range_fpr(fut, queries).fpr
                    ranked = sorted(fprs.items(), key=lambda kv: kv[1])
                    winner, best = ranked[0]
                    symbol = fpr_gap_symbol(best, ranked[1][1])
                    table[(key_dist, workload, range_size, bits)] = fprs
                    row.append(f"{winner}{symbol} {best:.3f}")
                rows.append(row)
            print_table(
                f"Fig 11  keys={key_dist}, workload={workload} "
                f"(cell: winner + gap symbol + winning FPR; "
                f"~ <1e-4, . <1e-3, o <1e-2, O <1e-1, # >=1e-1)",
                ["range \\ bits"] + [str(b) for b in BITS_GRID],
                rows,
                sink=sink,
            )
    write_result("fig11_distribution_map", "\n\n".join(sink))
    return table


class TestFig11Shapes:
    def test_bloomrf_robust_everywhere(self, map_results):
        """Problem 3: bloomRF stays within a usable FPR band across all
        distribution combinations at >= 16 bits/key (ranges <= 1e9)."""
        for (kd, wl, r, bits), fprs in map_results.items():
            if bits >= 16:
                assert fprs["bloomrf"] < 0.35, (kd, wl, r, bits, fprs)

    def test_rosetta_loses_large_ranges(self, map_results):
        for kd in KEY_DISTS:
            fprs = map_results[(kd, "uniform", 10**9, 16)]
            assert fprs["rosetta"] >= fprs["bloomrf"]

    def test_every_filter_wins_somewhere_or_close(self, map_results):
        """The paper: all three approaches augment each other — bloomRF must
        win or tie a large share; each baseline keeps a niche."""
        wins = {name: 0 for name in PRF_NAMES}
        for fprs in map_results.values():
            winner = min(fprs, key=fprs.get)
            wins[winner] += 1
        assert wins["bloomrf"] >= 3
        assert sum(wins.values()) == len(map_results)


def test_fig11_cell_benchmark(benchmark, map_results):
    fut = filter_cached("bloomrf", "normal", N_KEYS, 16, 10**5)
    queries = range_queries_cached("normal", N_KEYS, 100, 10**5, "normal")

    def cell():
        return measure_range_fpr(fut, queries).fpr

    benchmark(cell)
