"""Fig. 5 — PMHF random scatter vs a standard Bloom filter.

(A) How often words of different layers overlay the same bit-array element,
    per data distribution (flat curves = random scatter at word granularity).
(B) Lengths of 0-bit runs, bloomRF vs BF, per distribution.
(C) Distances between consecutive 0-bit runs (= 1-run lengths).

Paper setting: 2M keys, 10 bits/key, Delta=7 (six PMHF layers vs six BF
hashes); scaled here by REPRO_SCALE.
"""

from collections import Counter

import numpy as np
import pytest

from _common import keyset, print_table, scaled, write_result
from repro.baselines.bloom import BloomFilter
from repro.core.bloomrf import BloomRF
from repro.hashing import splitmix64_array

DISTRIBUTIONS = ("uniform", "normal", "zipfian")
N_KEYS = scaled(100_000)
BITS_PER_KEY = 10


def build_pair(distribution: str):
    keys = keyset(distribution, N_KEYS)
    brf = BloomRF.basic(n_keys=N_KEYS, bits_per_key=BITS_PER_KEY, delta=7)
    brf.insert_many(keys)
    bf = BloomFilter(n_keys=N_KEYS, bits_per_key=BITS_PER_KEY)
    bf.insert_many(keys)
    return brf, bf


def word_overlay_counts(brf: BloomRF, keys: np.ndarray) -> dict[int, Counter]:
    """Per layer: how many times each 64-bit array element is targeted."""
    overlays: dict[int, Counter] = {}
    for layer in brf._layers:
        prefix = keys >> np.uint64(layer.level)
        group = prefix >> np.uint64(layer.offset_bits)
        elements = Counter()
        for seed in layer.seeds:
            word_index = splitmix64_array(group, seed=seed) % np.uint64(
                layer.num_words
            )
            pos = np.uint64(layer.seg_base) + word_index * np.uint64(layer.word_bits)
            elements.update((pos >> np.uint64(6)).tolist())
        overlays[layer.index] = Counter(elements.values())
    return overlays


@pytest.fixture(scope="module")
def tables():
    sink = []
    for distribution in DISTRIBUTIONS:
        brf, bf = build_pair(distribution)
        keys = keyset(distribution, N_KEYS)

        overlays = word_overlay_counts(brf, keys)
        rows = []
        for layer, counter in sorted(overlays.items()):
            total = sum(counter.values())
            top = [counter.get(i, 0) / total for i in range(1, 9)]
            rows.append([f"layer {layer + 1}"] + [round(v, 4) for v in top])
        print_table(
            f"Fig 5.A  Word overlays per element, {distribution} "
            f"(relative frequency of 1..8 overlays; flat-ish rows = random scatter)",
            ["layer"] + [str(i) for i in range(1, 9)],
            rows,
            sink=sink,
        )

        rows = []
        for label, runs_a, runs_b in (
            ("0-runs", brf.pmhf_bits.zero_run_lengths(), bf.bits.zero_run_lengths()),
            ("1-runs", brf.pmhf_bits.one_run_lengths(), bf.bits.one_run_lengths()),
        ):
            hist_a = np.bincount(np.minimum(runs_a, 10), minlength=11)[1:]
            hist_b = np.bincount(np.minimum(runs_b, 10), minlength=11)[1:]
            rows.append([f"bloomRF {label}"] + hist_a.tolist())
            rows.append([f"bloom   {label}"] + hist_b.tolist())
        print_table(
            f"Fig 5.B/C  Run-length histograms, {distribution} "
            f"(counts for lengths 1..9, 10 = 10+)",
            ["series"] + [str(i) for i in range(1, 10)] + ["10+"],
            rows,
            sink=sink,
        )
    write_result("fig05_scatter", "\n\n".join(sink))
    return sink


def test_scatter_is_flat_at_word_granularity(tables):
    """Paper insight: the overlay-frequency curves are (mostly) flat across
    data distributions — PMHF scatter randomly at word granularity for
    uniform and normal; strong zipfian skew may affect top layers only.
    Checked as total-variation distance of each distribution's per-layer
    overlay histogram from the uniform one."""

    def histograms(distribution):
        brf, _ = build_pair(distribution)
        keys = keyset(distribution, N_KEYS)
        out = {}
        for layer, counter in word_overlay_counts(brf, keys).items():
            total = sum(counter.values())
            out[layer] = {k: v / total for k, v in counter.items()}
        return out

    reference = histograms("uniform")
    for distribution in ("normal", "zipfian"):
        other = histograms(distribution)
        for layer in reference:
            support = set(reference[layer]) | set(other[layer])
            tv_distance = 0.5 * sum(
                abs(reference[layer].get(k, 0.0) - other[layer].get(k, 0.0))
                for k in support
            )
            if distribution == "zipfian" and layer >= len(reference) - 2:
                continue  # the paper: strong zipfian skew affects top layers
            assert tv_distance < 0.25, (distribution, layer, tv_distance)


def test_bit_array_state_similar_to_bloom(tables):
    """Paper: both bit-arrays are in similar states (0-run structure)."""
    for distribution in DISTRIBUTIONS:
        brf, bf = build_pair(distribution)
        mean_brf = float(np.mean(brf.pmhf_bits.zero_run_lengths()))
        mean_bf = float(np.mean(bf.bits.zero_run_lengths()))
        assert mean_brf == pytest.approx(mean_bf, rel=0.5), distribution
        fill_brf = brf.pmhf_bits.fill_ratio()
        fill_bf = bf.bits.fill_ratio()
        assert fill_brf == pytest.approx(fill_bf, abs=0.12), distribution


def test_fig05_insert_benchmark(benchmark, tables):
    keys = keyset("uniform", N_KEYS)

    def build():
        brf = BloomRF.basic(n_keys=N_KEYS, bits_per_key=BITS_PER_KEY, delta=7)
        brf.insert_many(keys)
        return brf.pmhf_bits.count_ones()

    assert benchmark(build) > 0
