"""Batched range-query engine throughput: compiled plans vs scalar loop.

Measures ``BloomRF.contains_range_many`` (plan compilation + vectorized
probe execution) against the seed implementation's scalar loop
(``np.fromiter`` over per-query ``contains_range`` callback walks) on a
mixed-width workload: the paper's worst-case gap-adjacent empty queries
across range sizes 2 .. 2^22 plus a slice of non-empty queries around
inserted keys.  Results (and the bit-identity check) land in
``BENCH_rangebatch.json`` at the repo root so future PRs can track the
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_rangebatch.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_rangebatch.py --quick  # CI smoke

The full run uses a 10k-query workload and records the headline speedup
(target: >= 5x).  ``--quick`` shrinks the workload and only asserts that
batch throughput beats the scalar loop — a perf smoke cheap enough to run
on every change.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.bloomrf import BloomRF
from repro.workloads.queries import empty_range_queries

U64 = (1 << 64) - 1
EMPTY_RANGE_SIZES = (2, 16, 256, 4096, 1 << 14, 1 << 18, 1 << 22)
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_rangebatch.json"


def build_workload(
    keys: np.ndarray, n_queries: int, positive_share: float, seed: int
) -> np.ndarray:
    """Mixed-width ``(n, 2)`` bounds: mostly-empty queries + positives.

    Empty queries follow the paper's worst case (gap-adjacent, one slice
    per range size); positives are ranges anchored on inserted keys.
    """
    n_pos = int(n_queries * positive_share)
    n_empty = n_queries - n_pos
    parts = []
    per_size = n_empty // len(EMPTY_RANGE_SIZES)
    for i, size in enumerate(EMPTY_RANGE_SIZES):
        count = per_size if i else n_empty - per_size * (len(EMPTY_RANGE_SIZES) - 1)
        parts.append(
            empty_range_queries(
                keys, count, range_size=size, seed=seed + i
            ).bounds
        )
    rng = np.random.default_rng(seed)
    anchors = keys[rng.integers(0, keys.size, n_pos)]
    width = np.uint64(1) << rng.integers(1, 20, n_pos, dtype=np.uint64)
    lo = anchors - np.minimum(anchors, width)
    hi = np.minimum(anchors + width, np.uint64(U64))
    parts.append(np.stack([lo, hi], axis=1))
    bounds = np.concatenate(parts)
    return bounds[rng.permutation(bounds.shape[0])]


def scalar_loop(filt: BloomRF, bounds: np.ndarray) -> np.ndarray:
    """The seed implementation of ``contains_range_many``, kept as the
    baseline: a Python loop over scalar callback walks."""
    return np.fromiter(
        (
            filt.contains_range(int(lo), int(hi))
            for lo, hi in zip(bounds[:, 0], bounds[:, 1], strict=True)
        ),
        dtype=bool,
        count=bounds.shape[0],
    )


def run(quick: bool) -> dict:
    n_keys = 20_000 if quick else 100_000
    n_queries = 2_000 if quick else 10_000
    rng = np.random.default_rng(11)
    keys = np.unique(rng.integers(0, 1 << 64, n_keys, dtype=np.uint64))
    filt = BloomRF.tuned(n_keys=keys.size, bits_per_key=18, max_range=1 << 30)
    filt.insert_many(keys)
    bounds = build_workload(keys, n_queries, positive_share=0.2, seed=5)

    filt.contains_range_many(bounds[:64])  # warm both paths
    scalar_loop(filt, bounds[:64])
    start = time.perf_counter()
    scalar = scalar_loop(filt, bounds)
    scalar_s = time.perf_counter() - start
    start = time.perf_counter()
    batch = filt.contains_range_many(bounds)
    batch_s = time.perf_counter() - start

    identical = bool(np.array_equal(scalar, batch))
    result = {
        "benchmark": "rangebatch",
        "mode": "quick" if quick else "full",
        "n_keys": int(keys.size),
        "n_queries": int(n_queries),
        "positive_fraction": float(np.mean(scalar)),
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "scalar_qps": n_queries / scalar_s,
        "batch_qps": n_queries / batch_s,
        "speedup": scalar_s / batch_s,
        "bit_identical": identical,
    }
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller workload, asserts batch >= scalar",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(
        f"[rangebatch {result['mode']}] {result['n_queries']} queries "
        f"({result['positive_fraction']:.0%} positive): "
        f"scalar {result['scalar_qps']:,.0f} q/s | "
        f"batch {result['batch_qps']:,.0f} q/s | "
        f"speedup {result['speedup']:.1f}x -> {args.output}"
    )

    if not result["bit_identical"]:
        print("FAIL: batch results differ from scalar contains_range")
        return 1
    floor = 1.0 if args.quick else 5.0
    if result["speedup"] < floor:
        print(f"FAIL: speedup {result['speedup']:.2f}x below the {floor}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
