"""Shared machinery for the benchmark suite.

Every ``bench_*.py`` regenerates one table/figure of the paper.  Expensive
artifacts (key sets, built filters, loaded LSM instances) are cached here at
module level so multiple benchmark tests in one file share them; all key and
query counts respect ``REPRO_SCALE`` (see ``repro.bench.harness``).

The paper's 50M-key / 1e5-query runs correspond to REPRO_SCALE ~ 500; the
default scale keeps the full suite in single-digit minutes while preserving
every comparison's *shape* (EXPERIMENTS.md records scale per run).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bench.harness import (  # re-exported for the bench files
    SCALE,
    FilterUnderTest,
    build_standalone_filter,
    measure_point_fpr,
    measure_range_fpr,
    print_table,
    scaled,
    write_result,
)
from repro.workloads import (
    distribution_by_name,
    empty_point_queries,
    empty_range_queries,
)

__all__ = [
    "SCALE",
    "FilterUnderTest",
    "build_standalone_filter",
    "measure_point_fpr",
    "measure_range_fpr",
    "print_table",
    "scaled",
    "write_result",
    "keyset",
    "filter_cached",
    "range_queries_cached",
    "point_queries_cached",
    "PRF_NAMES",
    "U64",
]

U64 = (1 << 64) - 1

# The three point-range filters every comparison includes.
PRF_NAMES = ("rosetta", "surf", "bloomrf")


@lru_cache(maxsize=32)
def keyset(distribution: str, n_keys: int, seed: int = 7) -> np.ndarray:
    """Cached sorted distinct key set for a named distribution."""
    return distribution_by_name(distribution)(n_keys, seed=seed)


@lru_cache(maxsize=256)
def filter_cached(
    name: str,
    distribution: str,
    n_keys: int,
    bits_per_key: float,
    max_range: int,
    seed: int = 7,
):
    """Cached standalone filter build (SuRF ignores max_range -> share it)."""
    if name in ("surf", "bloom", "cuckoo"):
        max_range = 1  # these builds do not depend on the tuned range
    keys = keyset(distribution, n_keys, seed)
    return build_standalone_filter(
        name, keys, bits_per_key=bits_per_key, max_range=max_range
    )


@lru_cache(maxsize=128)
def range_queries_cached(
    distribution: str,
    n_keys: int,
    count: int,
    range_size: int,
    workload: str,
    seed: int = 13,
):
    keys = keyset(distribution, n_keys)
    return empty_range_queries(
        keys, count, range_size=range_size, workload=workload, seed=seed
    )


@lru_cache(maxsize=64)
def point_queries_cached(
    distribution: str, n_keys: int, count: int, workload: str = "uniform",
    seed: int = 17,
):
    keys = keyset(distribution, n_keys)
    return empty_point_queries(keys, count, workload=workload, seed=seed)


# ----------------------------------------------------------------------
# LSM experiment helpers (Figs. 9, 10, 12.C, 12.G)
# ----------------------------------------------------------------------
from dataclasses import dataclass

from repro.lsm import LsmDB, policy_by_name


@dataclass
class LsmRun:
    """Outcome of one (policy, bits/key, range) LSM probe workload."""

    policy: str
    bits_per_key: float
    range_size: int
    fpr: float
    time_s: float
    blocks_read: int
    stats: object


@lru_cache(maxsize=96)
def lsm_db_cached(
    policy_name: str,
    bits_per_key: float,
    max_range: int,
    n_keys: int,
    num_sstables: int,
    distribution: str = "uniform",
):
    """Build (and cache) a bulk-loaded LSM with the given filter policy."""
    keys = keyset(distribution, n_keys)
    # Insertion order is a deterministic shuffle: L0 SSTs overlap fully.
    rng = np.random.default_rng(42)
    db = LsmDB(policy=policy_by_name(policy_name, bits_per_key, max_range))
    db.bulk_load(rng.permutation(keys), num_sstables=num_sstables)
    return db


def run_lsm_ranges(
    policy_name: str,
    bits_per_key: float,
    range_size: int,
    n_keys: int,
    num_queries: int,
    num_sstables: int = 8,
    workload: str = "uniform",
) -> LsmRun:
    """Probe an LSM with all-empty range queries; report FPR and cost.

    Runs through the batched scan path so every SST's filter block is
    probed once per batch (``LsmDB.scan_nonempty_many``), which is how the
    Fig. 9/12 comparisons exercise the bulk range engines.
    """
    tuned_range = max(range_size, 2)
    db = lsm_db_cached(policy_name, bits_per_key, tuned_range, n_keys, num_sstables)
    queries = range_queries_cached(
        "uniform", n_keys, num_queries, range_size, workload
    )
    db.reset_stats()
    db.scan_nonempty_many(queries.bounds)
    stats = db.reset_stats()
    return LsmRun(
        policy=policy_name,
        bits_per_key=bits_per_key,
        range_size=range_size,
        fpr=stats.fpr,
        time_s=stats.total_time_s,
        blocks_read=stats.blocks_read,
        stats=stats,
    )


def run_lsm_points(
    policy_name: str,
    bits_per_key: float,
    n_keys: int,
    num_queries: int,
    num_sstables: int = 8,
    workload: str = "uniform",
) -> LsmRun:
    """Probe an LSM with absent point lookups."""
    db = lsm_db_cached(policy_name, bits_per_key, 2, n_keys, num_sstables)
    probes = point_queries_cached("uniform", n_keys, num_queries, workload=workload)
    db.reset_stats()
    for key in probes:
        db.get(int(key))
    stats = db.reset_stats()
    return LsmRun(
        policy=policy_name,
        bits_per_key=bits_per_key,
        range_size=1,
        fpr=stats.fpr,
        time_s=stats.total_time_s,
        blocks_read=stats.blocks_read,
        stats=stats,
    )
