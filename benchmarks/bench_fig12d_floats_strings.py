"""Fig. 12.D — floating-point and string datatype support.

Floats: a Kepler-like flux dataset (paper: NASA [33]; substitution in
DESIGN.md), range queries of width 1e-3, FPR + throughput vs bits/key
(paper: avg FPR 0.18 for 10-22 bits/key, 4M lookups/s in C++).

Strings: email-like keys (Fig. 12's strings panel), bloomRF's 7-byte-prefix
codec vs SuRF over raw strings.
"""

import time

import numpy as np
import pytest

from _common import print_table, scaled, write_result
from repro.baselines.surf import SuRF
from repro.core.types import FloatBloomRF, StringBloomRF, float_keys
from repro.workloads import kepler_like_flux, synthetic_words

N_FLOATS = scaled(60_000)
N_QUERIES = scaled(2_000, 400)
BITS_GRID = (10, 14, 18, 22)
QUERY_WIDTH = 1e-3


def empty_float_queries(values: np.ndarray, count: int, seed: int = 0):
    """Width-1e-3 float ranges guaranteed empty, near the data."""
    rng = np.random.default_rng(seed)
    sorted_vals = np.sort(values)
    out = []
    attempts = 0
    while len(out) < count and attempts < 50 * count:
        attempts += 1
        anchor = float(sorted_vals[int(rng.integers(0, sorted_vals.size))])
        lo = anchor + float(rng.uniform(1, 100)) * QUERY_WIDTH
        hi = lo + QUERY_WIDTH
        left = int(np.searchsorted(sorted_vals, lo))
        if left < sorted_vals.size and float(sorted_vals[left]) <= hi:
            continue
        out.append((lo, hi))
    if len(out) < count:
        raise RuntimeError("could not generate enough empty float queries")
    return out


@pytest.fixture(scope="module")
def float_results():
    flux = kepler_like_flux(N_FLOATS, seed=1)
    flux = flux[np.unique(float_keys(flux), return_index=True)[1]]
    queries = empty_float_queries(flux, N_QUERIES)
    sink = []
    rows = []
    table = {}
    for bits in BITS_GRID:
        filt = FloatBloomRF.tuned(n_keys=flux.size, bits_per_key=bits)
        filt.insert_many(flux)
        start = time.perf_counter()
        positives = sum(filt.contains_range(lo, hi) for lo, hi in queries)
        elapsed = time.perf_counter() - start
        fpr = positives / len(queries)
        ops = len(queries) / elapsed
        table[bits] = (fpr, ops, filt)
        rows.append([bits, fpr, ops])
    print_table(
        f"Fig 12.D  Floats: Kepler-like flux, range width {QUERY_WIDTH} "
        f"({flux.size} values; paper: avg FPR 0.18 across 10-22 bits/key)",
        ["bits/key", "fpr", "range lookups/s"],
        rows,
        sink=sink,
    )
    write_result("fig12d_floats", "\n".join(sink))
    return table, flux


@pytest.fixture(scope="module")
def string_results():
    # Insert two thirds of a word universe, probe the withheld third (absent
    # members drawn from the same distribution, as in membership testing).
    universe = synthetic_words(scaled(30_000, 3_000), seed=2)
    words = universe[::3] + universe[1::3]
    words.sort()
    absent = universe[2::3]
    sink = []
    rows = []
    table = {}
    for bits in (14, 22):
        brf = StringBloomRF.tuned(n_keys=len(words), bits_per_key=bits)
        for word in words:
            brf.insert(word)
        surf = SuRF(words, suffix_mode="real", suffix_bits=max(2, bits - 12))
        brf_fpr = sum(brf.contains_point(a) for a in absent) / len(absent)
        surf_fpr = sum(surf.contains_point(a) for a in absent) / len(absent)
        table[bits] = (brf_fpr, surf_fpr)
        rows.append([bits, brf_fpr, surf_fpr, surf.size_bits / len(words)])
    print_table(
        "Fig 12.D  Strings: absent-member FPR, bloomRF codec vs SuRF "
        f"({len(words)} email-like keys)",
        ["bits/key", "bloomrf_fpr", "surf_fpr", "surf actual b/k"],
        rows,
        sink=sink,
    )
    write_result("fig12d_strings", "\n".join(sink))
    return table, words


class TestFloats:
    def test_no_false_negatives(self, float_results):
        table, flux = float_results
        filt = table[22][2]
        for value in flux[:500]:
            assert filt.contains_point(float(value))
            assert filt.contains_range(float(value) - 1e-9, float(value) + 1e-9)

    def test_fpr_band(self, float_results):
        """Float ranges are wide in code space (paper: range 1 ~ 2^61 codes);
        FPR stays in a usable band and improves with budget."""
        table, _ = float_results
        assert table[22][0] <= table[10][0] + 0.05
        assert table[22][0] < 0.5

    def test_throughput_positive(self, float_results):
        table, _ = float_results
        assert all(ops > 0 for _, ops, _ in table.values())


class TestStrings:
    def test_no_false_negatives(self, string_results):
        table, words = string_results
        brf = StringBloomRF.tuned(n_keys=len(words), bits_per_key=18)
        for word in words[:500]:
            brf.insert(word)
        for word in words[:500]:
            assert brf.contains_point(word)

    def test_paper_strings_shape(self, string_results):
        """The paper's strings panel plots FPR on a 0..1 axis: bloomRF's
        7-byte-prefix + 1-byte-hash codec is coarse on low-entropy prefixes,
        while SuRF's full trie wins as the budget grows."""
        table, _ = string_results
        brf_fpr, surf_fpr = table[22]
        assert surf_fpr < brf_fpr  # SuRF better on strings at high budgets
        assert brf_fpr < 0.9  # but bloomRF stays a usable filter


def test_fig12d_float_probe_benchmark(benchmark, float_results, string_results):
    table, flux = float_results
    filt = table[14][2]
    queries = empty_float_queries(flux, 200, seed=9)

    def probe():
        return sum(filt.contains_range(lo, hi) for lo, hi in queries)

    benchmark(probe)
