"""Sect. 6 space-efficiency claims: Rosetta vs basic bloomRF bits/key.

The paper: "to achieve an FPR of 2% for ranges |R| = 2^6, Rosetta uses 17
bits/key, yet for |R| = 2^10 it already demands 22 bits/key, while for
|R| = 2^14 it requires 28 bits/key.  Given 17 bits/key, basic bloomRF can
handle ranges of |R| = 2^14 with an FPR of 1.5%, while with 22 bits/key
basic bloomRF covers |R| = 2^21 with 2.5% FPR."

Regenerated analytically from both space models plus a *measured*
confirmation of the two bloomRF claims on a scaled key set.
"""

import pytest

from _common import (
    keyset,
    print_table,
    range_queries_cached,
    scaled,
    write_result,
)
from repro.bench.theory import rosetta_first_cut_bits
from repro.core.bloomrf import BloomRF
from repro.core.model import basic_range_fpr_bound
from repro.core.config import basic_layer_count

N_MODEL = 10**7  # the analytic claims use paper-scale n


@pytest.fixture(scope="module")
def claims():
    sink = []
    k = basic_layer_count(N_MODEL, 64, 7)
    rows = []
    for exp in (6, 10, 14, 21):
        r = 1 << exp
        rows.append(
            [
                f"2^{exp}",
                rosetta_first_cut_bits(0.02, r),
                basic_range_fpr_bound(N_MODEL, 17 * N_MODEL, k, 7, r),
                basic_range_fpr_bound(N_MODEL, 22 * N_MODEL, k, 7, r),
            ]
        )
    print_table(
        "Sect 6: Rosetta bits/key for 2% FPR vs basic bloomRF FPR at fixed budgets",
        ["range", "rosetta_bits@2%", "bloomRF_fpr@17b/k", "bloomRF_fpr@22b/k"],
        rows,
        sink=sink,
    )
    return sink


@pytest.fixture(scope="module")
def measured(claims):
    n = scaled(100_000)
    keys = keyset("uniform", n)
    rows = []
    for bits, exp in ((17, 14), (22, 21)):
        filt = BloomRF.basic(n_keys=n, bits_per_key=bits)
        filt.insert_many(keys)
        queries = range_queries_cached("uniform", n, scaled(1_500, 300), 1 << exp, "uniform")
        fpr = sum(filt.contains_range(lo, hi) for lo, hi in queries) / len(queries)
        rows.append([f"2^{exp}", bits, fpr])
    print_table(
        "Sect 6 measured (scaled): basic bloomRF range FPR",
        ["range", "bits/key", "measured_fpr"],
        rows,
        sink=claims,
    )
    write_result("sect6_space_claims", "\n\n".join(claims))
    return rows


def test_rosetta_space_claims(claims):
    assert rosetta_first_cut_bits(0.02, 2**6) == pytest.approx(17, abs=1.5)
    assert rosetta_first_cut_bits(0.02, 2**10) == pytest.approx(22, abs=1.5)
    assert rosetta_first_cut_bits(0.02, 2**14) == pytest.approx(28, abs=1.5)


def test_bloomrf_claims_model(claims):
    k = basic_layer_count(N_MODEL, 64, 7)
    assert basic_range_fpr_bound(N_MODEL, 17 * N_MODEL, k, 7, 1 << 14) < 0.03
    assert basic_range_fpr_bound(N_MODEL, 22 * N_MODEL, k, 7, 1 << 21) < 0.04


def test_bloomrf_claims_measured(measured):
    for _, bits, fpr in measured:
        assert fpr < 0.08, f"measured FPR {fpr} too high at {bits} bits/key"


def test_basic_bloomrf_probe_benchmark(benchmark, measured):
    n = scaled(100_000)
    keys = keyset("uniform", n)
    filt = BloomRF.basic(n_keys=n, bits_per_key=17)
    filt.insert_many(keys)
    queries = list(range_queries_cached("uniform", n, 200, 1 << 14, "uniform"))

    def probe():
        hits = 0
        for lo, hi in queries:
            hits += filt.contains_range(lo, hi)
        return hits

    benchmark(probe)
