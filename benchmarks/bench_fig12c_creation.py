"""Fig. 12.C — filter construction cost in the LSM across bits/key.

Total filter creation plus serialization time when bulk-loading the key set
into L0 SSTs (paper: 50M uniform keys, 25 SST files — bloomRF builds fastest
thanks to its insert path; SuRF pays for budget tuning and trie building).
"""

import pytest

from _common import keyset, print_table, scaled, write_result
from repro.lsm import LsmDB, policy_by_name

import numpy as np

N_KEYS = scaled(60_000)
N_SSTABLES = 10
BITS_GRID = (10, 14, 18, 22)
POLICIES = ("bloomrf", "rosetta", "surf")


def build_once(policy_name: str, bits: int):
    keys = keyset("uniform", N_KEYS)
    rng = np.random.default_rng(3)
    db = LsmDB(policy=policy_by_name(policy_name, bits, 1 << 20))
    db.bulk_load(rng.permutation(keys), num_sstables=N_SSTABLES)
    build_s, serialize_s = db.construction_times()
    return build_s, serialize_s


@pytest.fixture(scope="module")
def creation_times():
    table = {}
    sink = []
    rows = []
    for bits in BITS_GRID:
        row = [bits]
        for name in POLICIES:
            build_s, serialize_s = build_once(name, bits)
            table[(bits, name)] = (build_s, serialize_s)
            row.append(build_s + serialize_s)
        rows.append(row)
    print_table(
        f"Fig 12.C  Filter creation + serialization seconds "
        f"({N_KEYS} keys into {N_SSTABLES} SSTs)",
        ["bits/key"] + list(POLICIES),
        rows,
        sink=sink,
    )
    write_result("fig12c_creation", "\n".join(sink))
    return table


class TestCreation:
    def test_bloomrf_fastest_creation(self, creation_times):
        """Paper: bloomRF has the lowest creation time."""
        for bits in BITS_GRID:
            bloomrf = sum(creation_times[(bits, "bloomrf")])
            surf = sum(creation_times[(bits, "surf")])
            assert bloomrf < surf

    def test_all_policies_complete(self, creation_times):
        assert len(creation_times) == len(BITS_GRID) * len(POLICIES)


def test_fig12c_build_benchmark(benchmark, creation_times):
    benchmark.pedantic(
        lambda: build_once("bloomrf", 16), rounds=3, iterations=1, warmup_rounds=0
    )
