"""Fig. 12.E — standalone point-query FPR vs bits/key (E.1-E.3).

All point filters compared: Rosetta, SuRF, bloomRF, a LevelDB/RocksDB-style
Bloom filter and a Cuckoo filter (high occupancy, fingerprint sized to the
budget), across uniform / normal / zipfian workloads.  Paper setting: 2M
keys; scaled.
"""

import pytest

from _common import (
    filter_cached,
    measure_point_fpr,
    point_queries_cached,
    print_table,
    scaled,
    write_result,
)

N_KEYS = scaled(80_000)
N_QUERIES = scaled(4_000, 500)
BITS = (10, 12, 14, 16, 18, 20, 22)
FILTERS = ("rosetta", "surf", "bloomrf", "bloom", "cuckoo")
WORKLOADS = ("uniform", "normal", "zipfian")


@pytest.fixture(scope="module")
def results():
    table = {}
    sink = []
    for workload in WORKLOADS:
        rows = []
        for bits in BITS:
            row = [bits]
            for name in FILTERS:
                fut = filter_cached(name, "uniform", N_KEYS, bits, 64)
                queries = point_queries_cached(
                    "uniform", N_KEYS, N_QUERIES, workload=workload
                )
                measured = measure_point_fpr(fut, queries)
                table[(workload, bits, name)] = measured.fpr
                row.append(measured.fpr)
            rows.append(row)
        print_table(
            f"Fig 12.E  Point-query FPR, {workload} workload "
            f"({N_KEYS} uniform keys, {N_QUERIES} empty lookups)",
            ["bits/key"] + list(FILTERS),
            rows,
            sink=sink,
        )
    write_result("fig12e_point_fpr", "\n\n".join(sink))
    return table


def test_fpr_decreases_with_budget(results):
    for name in ("bloomrf", "bloom", "rosetta"):
        low = results[("uniform", 10, name)]
        high = results[("uniform", 22, name)]
        assert high <= low + 0.005, name


def test_prf_point_fprs_are_competitive(results):
    """PRFs stay within an order of magnitude of the plain Bloom filter."""
    for workload in WORKLOADS:
        bloom = results[(workload, 22, "bloom")]
        assert results[(workload, 22, "bloomrf")] < max(50 * bloom, 0.01)
        assert results[(workload, 22, "rosetta")] < max(50 * bloom, 0.01)


def test_point_probe_latency_benchmark(benchmark, results):
    fut = filter_cached("bloomrf", "uniform", N_KEYS, 16, 64)
    queries = point_queries_cached("uniform", N_KEYS, 500)

    def probe():
        hits = 0
        for key in queries:
            hits += fut.point(int(key))
        return hits

    benchmark(probe)
