"""Serving-layer throughput: request coalescing vs per-request dispatch.

The asyncio front-end's claim is that concurrency can be converted into
the engines' vectorized batches: every request arriving while the
previous tick executes is merged into one ``get_many`` /
``put_many`` / ``scan_nonempty_many`` sweep, and a whole write group is
acknowledged at a single WAL group-commit barrier.  The baseline mode
(``coalesce=False``) dispatches every request as its own engine call
with its own ack fsync — what a naive handler-per-request server does.

Measured over ``--clients`` concurrent asyncio clients (8 by default,
the acceptance floor) running a seeded mixed workload (batched gets,
puts with values, deletes, range-emptiness probes, value scans) against
a fresh persistent ``wal_sync="batch"`` store per mode:

* **qps** — sustained requests per second across all clients;
* **p50_ms / p99_ms** — per-request latency percentiles;
* **coalesce_qps_speedup** — coalesced QPS over per-request QPS (the
  guarded ratio; must stay > 1: coalesced beats per-request dispatch);
* **engine_call_reduction** — how many engine calls coalescing saved;
* tick/barrier accounting from the server itself.

Results land in ``BENCH_server.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_ops_server.py          # full
    PYTHONPATH=src python benchmarks/bench_ops_server.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

from repro.api import FilterSpec, open_store
from repro.server.bench import run_benchmark

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_server.json"

SPEC = FilterSpec("bloomrf", {"bits_per_key": 14, "max_range": 1 << 12})


def run(quick: bool) -> dict:
    clients = 8
    requests = 40 if quick else 150
    root = Path(tempfile.mkdtemp(prefix="bench-server-"))
    modes = iter(("coalesced", "uncoalesced"))

    def make_store():
        return open_store(
            path=root / next(modes),
            filter=SPEC,
            memtable_capacity=1 << 14,
            store_values=True,
            wal_sync="batch",
            wal_group_commit=64,
        )

    try:
        result = run_benchmark(
            make_store,
            clients=clients,
            requests_per_client=requests,
            seed=61,
            batch=8,
            key_space=1 << 20,
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    result["benchmark"] = "server"
    result["mode"] = "quick" if quick else "full"
    result["spec"] = SPEC.to_dict()
    result["wal_sync"] = "batch"
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer requests per client",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    args = parser.parse_args(argv)

    result = run(quick=args.quick)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for label in ("coalesced", "uncoalesced"):
        side = result[label]
        print(
            f"[server {result['mode']}] {label:>11}: "
            f"{side['qps']:,.0f} req/s  "
            f"p50 {side['p50_ms']:.2f}ms  p99 {side['p99_ms']:.2f}ms  "
            f"({side['engine_calls']} engine calls, "
            f"{side['barriers']} ack barriers)"
        )
    print(
        f"[server {result['mode']}] coalescing speedup "
        f"{result['coalesce_qps_speedup']:.2f}x qps, "
        f"{result['engine_call_reduction']:.2f}x fewer engine calls"
    )
    print(f"-> {args.output}")

    if not result["acceptance"]["coalesced_beats_uncoalesced"]:
        print(
            f"FAIL: coalesced mode did not beat per-request dispatch "
            f"({result['coalesce_qps_speedup']:.2f}x)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
