"""Fig. 12.A — online behaviour: throughput vs insert/lookup ratio.

Single-threaded mixed workloads over one advisor-tuned bloomRF: x% lookups /
(100-x)% inserts, unsorted uniform keys, measured separately for point- and
range-lookup mixes.  The paper's insight: overall throughput *increases*
with the insert share (inserts are cheaper than probes) — bloomRF is online
(Problem 2), no a-priori key set needed.
"""

import time

import numpy as np
import pytest

from _common import print_table, scaled, write_result
from repro.core.bloomrf import BloomRF

N_OPS = scaled(40_000, 5_000)
RATIOS = (10, 30, 50, 70, 90, 100)  # percentage of lookups
RANGE_WIDTH = 10**6
U64 = (1 << 64) - 1


def run_mix(lookup_pct: int, range_mode: bool) -> float:
    """Ops/second for one mixed insert/lookup workload."""
    rng = np.random.default_rng(lookup_pct)
    keys = rng.integers(0, 1 << 64, N_OPS, dtype=np.uint64)
    is_lookup = rng.random(N_OPS) < lookup_pct / 100
    filt = BloomRF.tuned(
        n_keys=max(int(N_OPS * (1 - lookup_pct / 100)), 1000),
        bits_per_key=16,
        max_range=RANGE_WIDTH,
    )
    # Warm the filter so early lookups touch a non-empty structure.
    filt.insert_many(keys[:1000])
    start = time.perf_counter()
    for key, lookup in zip(keys.tolist(), is_lookup.tolist(), strict=True):
        if lookup:
            if range_mode:
                filt.contains_range(key, min(key + RANGE_WIDTH, U64))
            else:
                filt.contains_point(key)
        else:
            filt.insert(key)
    elapsed = time.perf_counter() - start
    return N_OPS / elapsed


@pytest.fixture(scope="module")
def throughputs():
    sink = []
    table = {}
    rows = []
    for pct in RATIOS:
        point_ops = run_mix(pct, range_mode=False)
        range_ops = run_mix(pct, range_mode=True)
        table[pct] = (point_ops, range_ops)
        rows.append([pct, point_ops, range_ops])
    print_table(
        f"Fig 12.A  Single-threaded mixed workload ({N_OPS} ops, "
        "concurrent unsorted inserts; paper: throughput grows with insert share)",
        ["% lookups", "point-mix ops/s", "range-mix ops/s"],
        rows,
        sink=sink,
    )
    write_result("fig12a_online", "\n".join(sink))
    return table


class TestOnlineBehaviour:
    def test_inserts_do_not_collapse_throughput(self, throughputs):
        """Impact of concurrent insertions is acceptable: the mixes stay
        within an order of magnitude.  (In CPython an insert costs more than
        an early-exiting empty probe, so the paper's trend inverts — the
        documented Fig. 12.A deviation in EXPERIMENTS.md.)"""
        insert_heavy = throughputs[10][0]
        lookup_only = throughputs[100][0]
        assert lookup_only < insert_heavy * 12

    def test_point_mix_faster_than_range_mix(self, throughputs):
        for pct in RATIOS[:-1]:
            point_ops, range_ops = throughputs[pct]
            assert point_ops >= range_ops * 0.5

    def test_no_build_phase_needed(self, throughputs):
        """Online property: queries interleave with inserts from op one
        (this whole bench would crash otherwise); sanity-check soundness."""
        filt = BloomRF.tuned(n_keys=1000, bits_per_key=16, max_range=1 << 20)
        for key in range(0, 5000, 7):
            filt.insert(key)
            assert filt.contains_point(key)
            assert filt.contains_range(max(0, key - 3), key + 3)


def test_fig12a_insert_benchmark(benchmark, throughputs):
    filt = BloomRF.tuned(n_keys=N_OPS, bits_per_key=16, max_range=RANGE_WIDTH)
    counter = iter(range(10**9))

    def insert():
        filt.insert((next(counter) * 0x9E3779B97F4A7C15) & U64)

    benchmark(insert)


def test_fig12a_batch_range_lookup(throughputs):
    """Batched range lookups through the compiled-plan engine agree bit for
    bit with the scalar walk on the online workload's mixed-width queries.
    (Throughput itself is tracked by benchmarks/bench_ops_rangebatch.py —
    a wall-clock assert here would only add flake risk.)"""
    rng = np.random.default_rng(12)
    filt = BloomRF.tuned(n_keys=N_OPS, bits_per_key=16, max_range=RANGE_WIDTH)
    filt.insert_many(rng.integers(0, 1 << 64, N_OPS, dtype=np.uint64))
    n = min(N_OPS, 10_000)
    lo = rng.integers(0, 1 << 63, n, dtype=np.uint64)
    width = np.uint64(1) << rng.integers(1, 20, n, dtype=np.uint64)
    hi = np.minimum(lo + width, np.uint64(U64))
    bounds = np.stack([lo, hi], axis=1)
    batch = filt.contains_range_many(bounds)
    scalar = [filt.contains_range(int(a), int(b)) for a, b in bounds]
    assert list(batch) == scalar
