"""Fig. 12.B — concurrency: per-thread throughput vs thread counts.

bloomRF is a parallel data structure (plain word-level OR writes, no locks);
this bench runs lookup threads against insert threads on one shared filter
and reports throughput per thread.  CPython's GIL serializes the Python-level
probe loops, so *absolute* scaling is flat by construction — DESIGN.md
documents the substitution; the reproduced quantity is the qualitative
behaviour: inserts have marginal impact on lookup throughput per thread,
and nothing corrupts (soundness asserted after the storm).

The sharded-scaling section runs the same workload through
:class:`~repro.shard.ShardedBloomRF`: the batch is partitioned over N
same-config shards and dispatched through a thread pool whose per-shard
sweeps are GIL-releasing NumPy kernels — the scale-out path this repo
offers where the paper uses word-level atomics.  Absolute scaling still
depends on core count (CI boxes may have one); the asserted quantities are
soundness and batch/scalar agreement, the reported one is throughput.
"""

import threading
import time

import numpy as np
import pytest

from _common import keyset, print_table, scaled, write_result
from repro.core.bloomrf import BloomRF
from repro.shard import ShardedBloomRF

N_KEYS = scaled(30_000)
OPS_PER_THREAD = scaled(4_000, 1_000)
U64 = (1 << 64) - 1
THREAD_MIXES = ((1, 0), (2, 0), (4, 0), (1, 1), (2, 2), (4, 4), (0, 2), (0, 4))


def run_threads(n_lookup: int, n_insert: int):
    keys = keyset("uniform", N_KEYS)
    filt = BloomRF.tuned(n_keys=N_KEYS, bits_per_key=16, max_range=1 << 20)
    filt.insert_many(keys)
    results = {}
    barrier = threading.Barrier(n_lookup + n_insert + 1)

    def lookup_worker(idx: int):
        rng = np.random.default_rng(idx)
        probes = rng.integers(0, 1 << 64, OPS_PER_THREAD, dtype=np.uint64).tolist()
        barrier.wait()
        start = time.perf_counter()
        hits = 0
        for key in probes:
            hits += filt.contains_range(key, min(key + 1 << 10, U64))
        results[("lookup", idx)] = OPS_PER_THREAD / (time.perf_counter() - start)

    def insert_worker(idx: int):
        rng = np.random.default_rng(100 + idx)
        fresh = rng.integers(0, 1 << 64, OPS_PER_THREAD, dtype=np.uint64).tolist()
        barrier.wait()
        start = time.perf_counter()
        for key in fresh:
            filt.insert(key)
        results[("insert", idx)] = OPS_PER_THREAD / (time.perf_counter() - start)

    threads = [
        threading.Thread(target=lookup_worker, args=(i,)) for i in range(n_lookup)
    ] + [threading.Thread(target=insert_worker, args=(i,)) for i in range(n_insert)]
    for t in threads:
        t.start()
    barrier.wait()
    for t in threads:
        t.join()
    lookup_tp = [v for (kind, _), v in results.items() if kind == "lookup"]
    insert_tp = [v for (kind, _), v in results.items() if kind == "insert"]

    def mean(xs):
        return sum(xs) / len(xs) if xs else 0.0

    return mean(lookup_tp), mean(insert_tp), filt, keys


@pytest.fixture(scope="module")
def thread_results():
    sink = []
    rows = []
    table = {}
    for n_lookup, n_insert in THREAD_MIXES:
        lookup_tp, insert_tp, filt, keys = run_threads(n_lookup, n_insert)
        table[(n_lookup, n_insert)] = (lookup_tp, insert_tp, filt, keys)
        rows.append([n_lookup, n_insert, lookup_tp, insert_tp])
    print_table(
        "Fig 12.B  Per-thread throughput (ops/s/thread) under concurrent "
        "lookups+inserts (GIL caps absolute scaling; see DESIGN.md)",
        ["lookup threads", "insert threads", "lookup ops/s/thr", "insert ops/s/thr"],
        rows,
        sink=sink,
    )
    write_result("fig12b_threads", "\n".join(sink))
    return table


SHARD_COUNTS = (1, 2, 4, 8)


def run_sharded(num_shards: int):
    """Batched point+range throughput through N parallel shards."""
    keys = keyset("uniform", N_KEYS)
    sharded = ShardedBloomRF.from_keys(
        keys, num_shards=num_shards, bits_per_key=16, max_range=1 << 20
    )
    rng = np.random.default_rng(num_shards)
    n_ops = scaled(20_000, 4_000)
    points = rng.integers(0, 1 << 64, n_ops, dtype=np.uint64)
    lo = rng.integers(0, 1 << 63, n_ops, dtype=np.uint64)
    bounds = np.stack(
        [lo, np.minimum(lo + np.uint64(1 << 10), np.uint64(U64))], axis=1
    )
    sharded.contains_point_many(points[:64])  # warm the pool
    start = time.perf_counter()
    point_ans = sharded.contains_point_many(points)
    point_tp = n_ops / (time.perf_counter() - start)
    start = time.perf_counter()
    range_ans = sharded.contains_range_many(bounds)
    range_tp = n_ops / (time.perf_counter() - start)
    return point_tp, range_tp, sharded, keys, (points, point_ans, bounds, range_ans)


@pytest.fixture(scope="module")
def sharded_results():
    sink = []
    rows = []
    table = {}
    for num_shards in SHARD_COUNTS:
        point_tp, range_tp, sharded, keys, answers = run_sharded(num_shards)
        table[num_shards] = (point_tp, range_tp, sharded, keys, answers)
        rows.append([num_shards, point_tp, range_tp])
    print_table(
        "Fig 12.B+  Sharded batch throughput (ops/s) vs shard count "
        "(ThreadPoolExecutor over same-config shards; scaling needs cores)",
        ["shards", "point batch ops/s", "range batch ops/s"],
        rows,
        sink=sink,
    )
    write_result("fig12b_sharded", "\n".join(sink))
    yield table
    for _, _, sharded, _, _ in table.values():
        sharded.close()


class TestShardedScaling:
    def test_sharded_soundness(self, sharded_results):
        """Every inserted key answers positive through every shard count."""
        for num_shards in SHARD_COUNTS:
            _, _, sharded, keys, _ = sharded_results[num_shards]
            assert sharded.contains_point_many(keys[:2000]).all()

    def test_sharded_subset_of_unsharded(self, sharded_results):
        """Sharding only removes cross-partition collisions: positives are
        a subset of the same-config unsharded filter's."""
        _, _, sharded, keys, answers = sharded_results[4]
        points, point_ans, bounds, range_ans = answers
        merged = sharded.merge()  # == the unsharded filter, bit for bit
        assert not np.any(point_ans & ~merged.contains_point_many(points))
        assert not np.any(range_ans & ~merged.contains_range_many(bounds))

    def test_single_shard_is_the_unsharded_filter(self, sharded_results):
        _, _, sharded, keys, answers = sharded_results[1]
        points, point_ans, _, _ = answers
        filt = BloomRF(sharded.config)
        filt.insert_many(keys)
        assert np.array_equal(point_ans, filt.contains_point_many(points))


class TestConcurrency:
    def test_soundness_after_concurrent_storm(self, thread_results):
        """No torn writes: every pre-inserted key still answers positive."""
        _, _, filt, keys = thread_results[(4, 4)]
        for key in keys[:2000]:
            assert filt.contains_point(int(key))

    def test_inserts_have_marginal_impact_on_lookups(self, thread_results):
        """Paper: insertions have marginal impact on per-thread lookups."""
        alone = thread_results[(2, 0)][0]
        mixed = thread_results[(2, 2)][0]
        assert mixed > alone * 0.25

    def test_insert_throughput_reported(self, thread_results):
        assert thread_results[(0, 4)][1] > 0


def test_fig12b_concurrent_benchmark(benchmark, thread_results):
    benchmark.pedantic(
        lambda: run_threads(2, 2), rounds=3, iterations=1, warmup_rounds=0
    )
