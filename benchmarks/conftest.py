"""Benchmark suite configuration.

Makes the sibling ``_common`` module importable from every bench file and
keeps pytest-benchmark output compact.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
