"""Benchmark suite configuration.

Makes the sibling ``_common`` module importable from every bench file,
keeps pytest-benchmark output compact, and tags every benchmark-derived
test ``bench`` + ``slow`` so the tier-1 selection (``-m "not slow"``) never
pays for a figure regeneration.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))


_BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    for item in items:
        if _BENCH_DIR in Path(item.fspath).parents:
            item.add_marker(pytest.mark.bench)
            item.add_marker(pytest.mark.slow)
