"""Fig. 12.G — execution-time breakdown of LSM range probes.

Per (filter, range size): filter-probe CPU, residual CPU, deserialization,
and (simulated) I/O wait — the paper's stacked bars at 22 bits/key.  The
shape to reproduce: bloomRF has the lowest CPU *and* total cost; Rosetta's
probe CPU explodes with the range size; false positives convert directly
into I/O wait.
"""

import pytest

from _common import (
    PRF_NAMES,
    print_table,
    run_lsm_ranges,
    scaled,
    write_result,
)

BITS = 22
N_KEYS = scaled(60_000)
N_QUERIES = scaled(400, 100)
RANGE_SIZES = (2, 16, 64, 10**3, 10**6)


@pytest.fixture(scope="module")
def breakdowns():
    sink = []
    table = {}
    rows = []
    for range_size in RANGE_SIZES:
        for name in PRF_NAMES:
            run = run_lsm_ranges(name, BITS, range_size, N_KEYS, N_QUERIES)
            b = run.stats.breakdown()
            table[(range_size, name)] = run
            rows.append(
                [
                    range_size,
                    name,
                    b["filter_probe_s"],
                    b["residual_cpu_s"],
                    b["deserialization_s"],
                    b["io_wait_s"],
                    run.stats.total_time_s,
                ]
            )
    print_table(
        f"Fig 12.G  Execution-time breakdown (seconds, {N_QUERIES} empty "
        f"range queries, {BITS} bits/key)",
        ["range", "filter", "filter probe", "cpu residual",
         "deserialization", "io wait", "total"],
        rows,
        sink=sink,
    )
    write_result("fig12g_breakdown", "\n".join(sink))
    return table


class TestBreakdown:
    def test_bloomrf_lowest_cpu_where_rosetta_engages(self, breakdowns):
        """Paper: bloomRF has the lowest CPU and total probe costs.  Compared
        on the ranges Rosetta actually serves — beyond its budget it answers
        "maybe" instantly (FPR 1), which is cheap but useless."""
        for range_size in (2, 16, 64, 10**3):
            bloomrf = breakdowns[(range_size, "bloomrf")]
            rosetta = breakdowns[(range_size, "rosetta")]
            assert (
                bloomrf.stats.filter_cpu_s <= rosetta.stats.filter_cpu_s * 1.2
            ), range_size

    def test_rosetta_cpu_grows_with_range(self, breakdowns):
        small = breakdowns[(16, "rosetta")].stats.filter_cpu_s
        large = breakdowns[(10**3, "rosetta")].stats.filter_cpu_s
        assert large > small
        # Beyond its level budget Rosetta gives up: instant positive answers.
        oversized = breakdowns[(10**6, "rosetta")]
        assert oversized.stats.fpr > 0.9

    def test_false_positives_cost_io(self, breakdowns):
        """io_wait appears exactly when filters let queries through."""
        for run in breakdowns.values():
            if run.stats.filter_positives == 0:
                assert run.stats.io_wait_s == 0
            blocked = run.stats.blocks_read
            assert (run.stats.io_wait_s > 0) == (blocked > 0)


def test_fig12g_probe_benchmark(benchmark, breakdowns):
    benchmark.pedantic(
        lambda: run_lsm_ranges("bloomrf", BITS, 10**3, N_KEYS, 100),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
