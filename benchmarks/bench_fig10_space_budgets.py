"""Fig. 10 — LSM comparison across space budgets (10-22 bits/key).

Small (8/16/32), medium (1e4/1e5/1e6) and large (1e9/1e10/1e11) range panels
plus the point-query panels (including the RocksDB-style Bloom filter
baseline) for uniform / normal / zipfian workloads.
"""

import pytest

from _common import (
    PRF_NAMES,
    print_table,
    run_lsm_points,
    run_lsm_ranges,
    scaled,
    write_result,
)

N_KEYS = scaled(60_000)
N_QUERIES = scaled(400, 120)
N_SSTABLES = 6
BITS_GRID = (10, 14, 18, 22)
PANELS = {
    "small (A-C)": (8, 16, 32),
    "medium (D-F)": (10**4, 10**5, 10**6),
    "large (G-I)": (10**9, 10**10, 10**11),
}
POINT_WORKLOADS = ("uniform", "normal", "zipfian")


@pytest.fixture(scope="module")
def range_results():
    table = {}
    sink = []
    for panel, range_sizes in PANELS.items():
        for range_size in range_sizes:
            rows = []
            for bits in BITS_GRID:
                row = [bits]
                for name in PRF_NAMES:
                    run = run_lsm_ranges(
                        name, bits, range_size, N_KEYS, N_QUERIES, N_SSTABLES
                    )
                    table[(range_size, bits, name)] = run
                    row.extend([run.fpr, run.time_s])
                rows.append(row)
            print_table(
                f"Fig 10 {panel}  Range {range_size:.0e}, uniform workload",
                ["bits/key", "rosetta_fpr", "rosetta_s", "surf_fpr", "surf_s",
                 "bloomrf_fpr", "bloomrf_s"],
                rows,
                sink=sink,
            )
    write_result("fig10_ranges", "\n\n".join(sink))
    return table


@pytest.fixture(scope="module")
def point_results():
    table = {}
    sink = []
    for workload in POINT_WORKLOADS:
        rows = []
        for bits in BITS_GRID:
            row = [bits]
            for name in PRF_NAMES + ("bloom",):
                run = run_lsm_points(
                    name, bits, N_KEYS, N_QUERIES, N_SSTABLES, workload
                )
                table[(workload, bits, name)] = run.fpr
                row.append(run.fpr)
            rows.append(row)
        print_table(
            f"Fig 10 point panels  {workload} workload",
            ["bits/key"] + list(PRF_NAMES) + ["bloom"],
            rows,
            sink=sink,
        )
    write_result("fig10_points", "\n\n".join(sink))
    return table


class TestFig10Shapes:
    def test_bloomrf_efficient_at_low_budgets(self, range_results):
        """Insight of Exp. 2: at <= 18 bits/key bloomRF dominates on
        FPR-per-bit for small and medium ranges vs Rosetta."""
        for range_size in (8, 16, 32, 10**4, 10**5, 10**6):
            for bits in (10, 14):
                bloomrf = range_results[(range_size, bits, "bloomrf")]
                rosetta = range_results[(range_size, bits, "rosetta")]
                assert bloomrf.fpr <= rosetta.fpr + 0.05, (range_size, bits)

    def test_fpr_improves_with_budget(self, range_results):
        for name in PRF_NAMES:
            lo = range_results[(10**5, 10, name)].fpr
            hi = range_results[(10**5, 22, name)].fpr
            assert hi <= lo + 0.02, name

    def test_bloomrf_large_ranges_stay_reasonable(self, range_results):
        """Exact-layer configurations keep large-range FPR bounded
        (paper: ~0.05 at 1e11 with 22 bits/key)."""
        run = range_results[(10**10, 22, "bloomrf")]
        assert run.fpr < 0.3

    def test_point_panel_bloom_is_floor(self, point_results):
        """The dedicated point filter is the floor; bloomRF tracks it within
        an order of magnitude (paper: bloomRF even beats the RocksDB BF)."""
        for workload in POINT_WORKLOADS:
            bloom = point_results[(workload, 22, "bloom")]
            bloomrf = point_results[(workload, 22, "bloomrf")]
            assert bloomrf <= max(bloom * 20, 0.01)


def test_fig10_sweep_benchmark(benchmark, range_results, point_results):
    def one_cell():
        return run_lsm_ranges("bloomrf", 14, 10**5, N_KEYS, 50, N_SSTABLES).fpr

    benchmark(one_cell)
