"""Fig. 1 — the positioning map: best filter per (bits/key, #keys) at
small/medium/large ranges, normal data and query distributions.

The paper describes Fig. 1 as a flattened Fig. 11.E (normal/normal cell)
averaging over key counts 1e3..5e7; this bench sweeps scaled key counts and
reports the winner per (bits/key, range-class).
"""

import pytest

from _common import (
    PRF_NAMES,
    filter_cached,
    measure_range_fpr,
    print_table,
    range_queries_cached,
    scaled,
    write_result,
)

KEY_COUNTS = tuple(scaled(n, 1000) for n in (2_000, 10_000, 50_000))
BITS_GRID = (8, 12, 16, 20, 22)
RANGES = {"small (32)": 32, "medium (1e5)": 10**5, "large (1e9)": 10**9}
N_QUERIES = scaled(250, 80)


@pytest.fixture(scope="module")
def positioning():
    table = {}
    sink = []
    for label, range_size in RANGES.items():
        rows = []
        for bits in BITS_GRID:
            row = [bits]
            for n_keys in KEY_COUNTS:
                fprs = {}
                for name in PRF_NAMES:
                    fut = filter_cached(name, "normal", n_keys, bits, range_size)
                    queries = range_queries_cached(
                        "normal", n_keys, N_QUERIES, range_size, "normal"
                    )
                    fprs[name] = measure_range_fpr(fut, queries).fpr
                winner = min(fprs, key=fprs.get)
                table[(label, bits, n_keys)] = fprs
                row.append(f"{winner} {fprs[winner]:.3f}")
            rows.append(row)
        print_table(
            f"Fig 1  Best filter, {label} ranges, normal data/queries "
            f"(columns = number of keys)",
            ["bits/key"] + [str(n) for n in KEY_COUNTS],
            rows,
            sink=sink,
        )
    write_result("fig01_positioning", "\n\n".join(sink))
    return table


class TestFig1Shapes:
    def test_bloomrf_dominates_medium_ranges(self, positioning):
        """The paper's headline: the medium-range band belongs to bloomRF.
        At reduced scale SuRF takes some high-budget cells (EXPERIMENTS.md
        caveat 1), so the assertions are: bloomRF beats Rosetta in *every*
        medium cell and outright wins a share of them."""
        wins = 0
        cells = 0
        for bits in BITS_GRID[1:]:
            for n_keys in KEY_COUNTS:
                fprs = positioning[("medium (1e5)", bits, n_keys)]
                cells += 1
                wins += min(fprs, key=fprs.get) == "bloomrf"
                assert fprs["bloomrf"] <= fprs["rosetta"] + 0.01, (bits, n_keys)
        assert wins >= max(cells // 4, 1)

    def test_rosetta_competitive_small_ranges_high_budget(self, positioning):
        fprs = positioning[("small (32)", 22, KEY_COUNTS[-1])]
        assert fprs["rosetta"] <= 3 * fprs["bloomrf"] + 0.01

    def test_all_maps_have_low_winning_fpr(self, positioning):
        for (label, bits, n), fprs in positioning.items():
            if bits >= 16 and "large" not in label:
                assert min(fprs.values()) < 0.2, (label, bits, n)


def test_fig01_benchmark(benchmark, positioning):
    fut = filter_cached("bloomrf", "normal", KEY_COUNTS[-1], 16, 10**5)
    queries = range_queries_cached(
        "normal", KEY_COUNTS[-1], 100, 10**5, "normal"
    )
    benchmark(lambda: measure_range_fpr(fut, queries).fpr)
